#include "apsp/apsp_mpc.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "apsp/oracle.hpp"
#include "graph/distance.hpp"
#include "graph/generators.hpp"
#include "spanner/baswana_sen.hpp"

namespace mpcspan {
namespace {

TEST(Oracle, QueriesMatchSpannerDijkstra) {
  Rng rng(1);
  const Graph g = gnmRandom(200, 1000, rng, {WeightModel::kUniform, 10.0}, true);
  auto spanner = buildBaswanaSen(g, {.k = 3, .seed = 1});
  SpannerDistanceOracle oracle(g, spanner);
  const auto direct = dijkstra(oracle.spannerGraph(), 5);
  for (VertexId v : {0u, 3u, 50u, 199u})
    EXPECT_DOUBLE_EQ(oracle.query(5, v), direct[v]);
  EXPECT_DOUBLE_EQ(oracle.query(7, 7), 0.0);
}

TEST(Oracle, CachedAndUncachedAgree) {
  Rng rng(2);
  const Graph g = gnmRandom(150, 600, rng, {WeightModel::kUniform, 5.0}, true);
  auto spanner = buildBaswanaSen(g, {.k = 2, .seed = 2});
  SpannerDistanceOracle oracle(g, std::move(spanner), /*cacheSources=*/2);
  const double d1 = oracle.query(0, 10);
  oracle.query(1, 10);
  oracle.query(2, 10);  // evicts
  EXPECT_DOUBLE_EQ(oracle.query(0, 10), d1);
}

TEST(Oracle, SpannerWordsIsTwiceEdges) {
  Rng rng(3);
  const Graph g = gnmRandom(100, 300, rng, {}, true);
  auto spanner = buildBaswanaSen(g, {.k = 2, .seed = 3});
  const std::size_t edges = spanner.edges.size();
  SpannerDistanceOracle oracle(g, std::move(spanner));
  EXPECT_EQ(oracle.spannerWords(), 2 * edges);
}

TEST(MpcApsp, AutoParametersAndFit) {
  Rng rng(4);
  const Graph g = gnmRandom(1024, 8192, rng, {WeightModel::kUniform, 50.0}, true);
  const auto r = runMpcApsp(g, {.seed = 1});
  EXPECT_EQ(r.kUsed, 10u);  // ceil(log2 1024)
  EXPECT_GE(r.tUsed, 1u);
  // Corollary 1.4's whole point: the spanner fits one near-linear machine.
  EXPECT_TRUE(r.fitsOneMachine)
      << "spanner words " << r.oracle.spannerWords() << " vs budget "
      << r.machineMemoryWords;
  EXPECT_GT(r.roundsNearLinear, 0l);
}

TEST(MpcApsp, ApproximationWithinCertifiedBound) {
  Rng rng(5);
  const Graph g = gnmRandom(500, 4000, rng, {WeightModel::kUniform, 20.0}, true);
  auto r = runMpcApsp(g, {.seed = 2});
  const auto exact = dijkstra(g, 42);
  const auto approxRow = r.oracle.distancesFrom(42);
  const auto& approx = *approxRow;
  double worst = 1.0;
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    if (v == 42 || exact[v] == kInfDist || exact[v] == 0) continue;
    ASSERT_NE(approx[v], kInfDist);
    EXPECT_GE(approx[v] + 1e-9, exact[v]);
    worst = std::max(worst, approx[v] / exact[v]);
  }
  EXPECT_LE(worst, r.approxCertified + 1e-6);
}

TEST(MpcApsp, RoundsAreSublogarithmicShape) {
  // Rounds should scale with t*log(k)/log(t+1), not with k ~ log n: going
  // from n=256 to n=4096 must grow rounds by far less than log n doubles.
  Rng rng(6);
  const Graph small = gnmRandom(256, 1024, rng, {}, true);
  const Graph large = gnmRandom(4096, 16384, rng, {}, true);
  const auto rs = runMpcApsp(small, {.seed = 3});
  const auto rl = runMpcApsp(large, {.seed = 3});
  EXPECT_LT(rl.roundsNearLinear, 3 * rs.roundsNearLinear);
}

TEST(MpcApsp, TOverrideRespected) {
  Rng rng(7);
  const Graph g = gnmRandom(400, 2000, rng, {WeightModel::kUniform, 4.0}, true);
  const auto r = runMpcApsp(g, {.t = 1, .seed = 4});
  EXPECT_EQ(r.tUsed, 1u);
  // t=1 gives approximation exponent log2(3) on log n.
  const double log2n = std::log2(400.0);
  EXPECT_NEAR(r.approxTheoretical, std::pow(log2n, std::log2(3.0)), 1e-6);
}

}  // namespace
}  // namespace mpcspan
