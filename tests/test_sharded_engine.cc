// The sharded multi-process RoundEngine backend: cross-shard equivalence
// (1-shard, N-shard, 1-thread, N-thread runs of one workload are
// bit-identical — rounds, traffic ledger, delivery contents — on all three
// topologies), the resident-worker protocol (fork once, pid stability,
// kernel-owned state, worker-lifecycle failure modes), the round barrier's
// failure modes on both backends, and the facades running sharded
// end-to-end.
#include "runtime/shard/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <signal.h>

#include <cstdlib>
#include <memory>
#include <mutex>

#include "cclique/clique.hpp"
#include "graph/generators.hpp"
#include "mpc/dist_spanner.hpp"
#include "mpc/simulator.hpp"
#include "pram/pram.hpp"
#include "runtime/kernel.hpp"
#include "runtime/round_engine.hpp"
#include "spanner/baswana_sen.hpp"

namespace mpcspan {
namespace {

using runtime::CliqueTopology;
using runtime::Delivery;
using runtime::EngineConfig;
using runtime::KernelId;
using runtime::Message;
using runtime::MpcTopology;
using runtime::PramTopology;
using runtime::RoundEngine;
using runtime::Topology;
using runtime::shard::ShardedEngine;
using runtime::shard::ShardError;

/// Flattened inboxes of every round plus the ledger, for cross-backend
/// comparison.
struct Trace {
  std::vector<Word> flat;
  std::size_t rounds = 0;
  std::size_t words = 0;
  std::size_t maxRound = 0;

  friend bool operator==(const Trace&, const Trace&) = default;
};

void recordRound(Trace& trace, const std::vector<std::vector<Delivery>>& inbox) {
  for (const auto& deliveries : inbox)
    for (const Delivery& d : deliveries) {
      trace.flat.push_back(d.src);
      trace.flat.insert(trace.flat.end(), d.payload.begin(), d.payload.end());
    }
}

void finishTrace(Trace& trace, RoundEngine& eng) {
  trace.rounds = eng.rounds();
  trace.words = eng.totalWordsSent();
  trace.maxRound = eng.maxRoundWords();
}

/// Deterministic all-to-all MPC workload with mixed payload sizes (1-word
/// fast path and heap spills).
Trace runMpcWorkload(std::size_t threads, std::size_t shards) {
  const std::size_t p = 16;
  RoundEngine eng(EngineConfig{p, threads, shards},
                  std::make_unique<MpcTopology>(6 * p));
  EXPECT_EQ(eng.numShards(), shards == 0 ? 1u : shards);
  Trace trace;
  std::uint64_t h = 42;
  for (int round = 0; round < 8; ++round) {
    std::vector<std::vector<Message>> out(p);
    for (std::size_t src = 0; src < p; ++src)
      for (std::size_t k = 0; k < 3; ++k) {
        h = h * 6364136223846793005ULL + 1442695040888963407ULL;
        const std::size_t dst = (src + 1 + (h >> 33) % (p - 1)) % p;
        if (k == 0)
          out[src].push_back({dst, {h}});  // single word: inline payload
        else
          out[src].push_back({dst, {h, h ^ src, h >> 7}});
      }
    recordRound(trace, eng.exchange(std::move(out)));
  }
  finishTrace(trace, eng);
  return trace;
}

TEST(ShardedEngine, MpcWorkloadBitIdenticalAcrossShardsAndThreads) {
  const Trace base = runMpcWorkload(1, 1);
  EXPECT_EQ(base.rounds, 8u);
  for (std::size_t shards : {2u, 3u, 4u, 16u})
    EXPECT_EQ(base, runMpcWorkload(1, shards)) << shards << " shards";
  EXPECT_EQ(base, runMpcWorkload(4, 4)) << "4 threads x 4 shards";
  EXPECT_EQ(base, runMpcWorkload(3, 2)) << "3 threads x 2 shards";
}

/// Clique workload: every node sends one word to a few distinct peers.
Trace runCliqueWorkload(std::size_t threads, std::size_t shards) {
  const std::size_t n = 12;
  RoundEngine eng(EngineConfig{n, threads, shards},
                  std::make_unique<CliqueTopology>());
  Trace trace;
  for (int round = 1; round <= 6; ++round) {
    std::vector<std::vector<Message>> out(n);
    for (std::size_t src = 0; src < n; ++src)
      for (int j = 0; j < 3; ++j)  // offsets round + {0,4,8}: distinct mod 12
        out[src].push_back(
            {(src + static_cast<std::size_t>(round + j * 4)) % n,
             {src * 1000 + static_cast<std::size_t>(round * 10 + j)}});
    recordRound(trace, eng.exchange(std::move(out)));
  }
  finishTrace(trace, eng);
  return trace;
}

TEST(ShardedEngine, CliqueWorkloadBitIdenticalAcrossShards) {
  const Trace base = runCliqueWorkload(1, 1);
  for (std::size_t shards : {2u, 4u})
    EXPECT_EQ(base, runCliqueWorkload(2, shards)) << shards << " shards";
}

/// PRAM workload: concurrent single-word writes; Priority-CRCW resolution
/// (lowest writer id) must be identical shard-count independent.
Trace runPramWorkload(std::size_t threads, std::size_t shards) {
  const std::size_t n = 10;
  RoundEngine eng(EngineConfig{n, threads, shards},
                  std::make_unique<PramTopology>());
  Trace trace;
  for (int round = 0; round < 5; ++round) {
    std::vector<std::vector<Message>> out(n);
    for (std::size_t src = 0; src < n; ++src)
      out[src].push_back({(src * 7 + static_cast<std::size_t>(round)) % 3,
                          {src * 100 + static_cast<std::size_t>(round)}});
    recordRound(trace, eng.exchange(std::move(out)));
  }
  finishTrace(trace, eng);
  return trace;
}

TEST(ShardedEngine, PramPriorityWritesBitIdenticalAcrossShards) {
  const Trace base = runPramWorkload(1, 1);
  // All attempted writes count as work even though only one lands per cell.
  EXPECT_EQ(base.words, 5u * 10u);
  for (std::size_t shards : {2u, 4u, 5u})
    EXPECT_EQ(base, runPramWorkload(2, shards)) << shards << " shards";
}

TEST(ShardedEngine, StepRunsInWorkerProcesses) {
  // Ring token passing, compute phase executed inside forked shard workers.
  RoundEngine eng(EngineConfig{8, 2, 4}, std::make_unique<MpcTopology>(8));
  ASSERT_EQ(eng.numShards(), 4u);
  eng.step([](std::size_t m, const std::vector<Delivery>&) {
    std::vector<Message> out;
    if (m == 0) out.push_back({1, {100}});
    return out;
  });
  for (int r = 0; r < 6; ++r) {
    eng.step([&](std::size_t m, const std::vector<Delivery>& in) {
      std::vector<Message> out;
      if (!in.empty())
        out.push_back({(m + 1) % eng.numMachines(), {in[0].payload[0] + 1}});
      return out;
    });
  }
  ASSERT_EQ(eng.inbox(7).size(), 1u);
  EXPECT_EQ(eng.inbox(7)[0].payload[0], 106u);
  EXPECT_EQ(eng.rounds(), 7u);
}

TEST(ShardedEngine, CapacityViolationAbortsTheRoundLoudly) {
  RoundEngine eng(EngineConfig{4, 1, 2}, std::make_unique<MpcTopology>(2));
  std::vector<std::vector<Message>> out(4);
  out[3].push_back({0, {1, 2, 3}});  // sender over budget, validated by shard 1
  EXPECT_THROW(eng.exchange(std::move(out)), CapacityError);
  // The engine survives an aborted round: the barrier released every worker.
  std::vector<std::vector<Message>> ok(4);
  ok[0].push_back({3, {7}});
  const auto inbox = eng.exchange(std::move(ok));
  EXPECT_EQ(inbox[3].size(), 1u);
  EXPECT_EQ(eng.rounds(), 1u);  // the aborted round was never charged
}

TEST(ShardedEngine, UnknownDestinationThrowsInvalidArgument) {
  RoundEngine eng(EngineConfig{4, 1, 2}, std::make_unique<MpcTopology>(8));
  std::vector<std::vector<Message>> out(4);
  out[1].push_back({99, {1}});
  EXPECT_THROW(eng.exchange(std::move(out)), std::invalid_argument);
}

TEST(ShardedEngine, UnknownDestinationFromAnotherShardsSource) {
  // The rogue source belongs to the LAST shard, so every other worker's
  // validateSlice sees the bad destination among sources it does not own.
  // Pins the fixed heap overflow: each worker must bounds-check all
  // sources (and MpcTopology must not index received[] unchecked) rather
  // than only vetting its own range. The engine must also survive the
  // aborted round.
  RoundEngine eng(EngineConfig{8, 1, 4}, std::make_unique<MpcTopology>(8));
  ASSERT_EQ(eng.numShards(), 4u);
  std::vector<std::vector<Message>> out(8);
  out[7].push_back({1u << 20, {1}});
  EXPECT_THROW(eng.exchange(std::move(out)), std::invalid_argument);
  std::vector<std::vector<Message>> ok(8);
  ok[7].push_back({0, {5}});
  const auto inbox = eng.exchange(std::move(ok));
  ASSERT_EQ(inbox[0].size(), 1u);
  EXPECT_EQ(inbox[0][0].payload[0], 5u);
  EXPECT_EQ(eng.rounds(), 1u);
}

TEST(ShardedEngine, StepFnExceptionPropagates) {
  RoundEngine eng(EngineConfig{6, 1, 3}, std::make_unique<MpcTopology>(8));
  EXPECT_THROW(eng.step([](std::size_t m, const std::vector<Delivery>&)
                            -> std::vector<Message> {
                 if (m == 4) throw std::runtime_error("boom in worker");
                 return {};
               }),
               std::runtime_error);
}

TEST(ShardedEngine, ShardCountClampsToMachines) {
  RoundEngine eng(EngineConfig{3, 1, 64}, std::make_unique<MpcTopology>(8));
  EXPECT_EQ(eng.numShards(), 3u);
}

TEST(ShardedEngine, EnvVarSelectsDefaultShardCount) {
  ASSERT_EQ(::setenv("MPCSPAN_SHARDS", "2", 1), 0);
  {
    RoundEngine eng(EngineConfig{8, 1, 0}, std::make_unique<MpcTopology>(8));
    EXPECT_EQ(eng.numShards(), 2u);
  }
  ASSERT_EQ(::unsetenv("MPCSPAN_SHARDS"), 0);
  {
    RoundEngine eng(EngineConfig{8, 1, 0}, std::make_unique<MpcTopology>(8));
    EXPECT_EQ(eng.numShards(), 1u);
  }
}

TEST(ShardedEngine, PartitionIsBalancedAndContiguous) {
  MpcTopology topo(8);
  ShardedEngine se(10, 4, 1, &topo);
  EXPECT_EQ(se.shardBegin(0), 0u);
  EXPECT_EQ(se.shardEnd(0), 3u);
  EXPECT_EQ(se.shardEnd(1), 6u);
  EXPECT_EQ(se.shardEnd(2), 8u);
  EXPECT_EQ(se.shardEnd(3), 10u);
  EXPECT_THROW(ShardedEngine(10, 1, 1, &topo), std::invalid_argument);
  EXPECT_THROW(ShardedEngine(10, 11, 1, &topo), std::invalid_argument);
}

// --- Resident workers: fork-once lifetime, kernel-owned state, failure
// modes. ---

/// Counter kernel: per-machine state that must live across rounds wherever
/// the machine lives. Every round, machine m adds its inbox sum plus one to
/// its counter and sends the counter to (m + 1) % n.
class CounterKernel final : public runtime::StepKernel {
 public:
  static std::string kernelName() { return "test.counter"; }

  std::vector<Message> step(const runtime::KernelCtx& ctx) override {
    ensureSized(ctx);
    Word sum = 1;
    for (const Delivery& d : ctx.inbox) sum += d.payload.front();
    counters_[ctx.machine] += sum;
    if (!ctx.args.empty() && ctx.args[0] == 1 && ctx.machine == 2)
      throw std::runtime_error("counter kernel boom");
    return {{(ctx.machine + 1) % ctx.numMachines, {counters_[ctx.machine]}}};
  }

  std::vector<Word> fetch(const runtime::KernelCtx& ctx) override {
    ensureSized(ctx);
    return {counters_[ctx.machine]};
  }

 private:
  void ensureSized(const runtime::KernelCtx& ctx) {
    std::call_once(sized_, [&] { counters_.resize(ctx.numMachines); });
  }

  std::once_flag sized_;
  std::vector<Word> counters_;
};

TEST(ResidentWorkers, ForkOncePidsStableAcrossRounds) {
  RoundEngine eng(EngineConfig{8, 1, 4, /*resident=*/1},
                  std::make_unique<MpcTopology>(16));
  const auto* backend = eng.shardBackend();
  ASSERT_NE(backend, nullptr);
  ASSERT_TRUE(backend->resident());
  EXPECT_FALSE(backend->started());  // lazy: nothing forked yet

  auto oneRound = [&] {
    std::vector<std::vector<Message>> out(8);
    for (std::size_t m = 0; m < 8; ++m) out[m].push_back({(m + 3) % 8, {m}});
    eng.exchange(std::move(out));
  };
  oneRound();
  const std::vector<pid_t> pids = backend->workerPids();
  ASSERT_EQ(pids.size(), 4u);
  for (int r = 0; r < 5; ++r) oneRound();
  EXPECT_EQ(backend->workerPids(), pids) << "workers must fork exactly once";
  EXPECT_EQ(eng.rounds(), 6u);
}

TEST(ResidentWorkers, KernelStatePersistsAndMatchesInProcessBitForBit) {
  // Same kernel workload on the in-process engine and on 2/4-shard resident
  // engines: after >= 3 rounds the kernel-owned counters and the resident
  // inboxes must agree bit for bit, on a deliver-all and a priority-write
  // topology.
  auto run = [](std::size_t threads, std::size_t shards, bool pram) {
    const std::size_t n = 8;
    RoundEngine eng(EngineConfig{n, threads, shards, /*resident=*/1},
                    pram ? std::unique_ptr<Topology>(new PramTopology())
                         : std::unique_ptr<Topology>(new MpcTopology(16)));
    const KernelId k = eng.registerKernel(
        CounterKernel::kernelName(),
        [] { return std::make_unique<CounterKernel>(); });
    for (int r = 0; r < 4; ++r) eng.step(k);
    struct Result {
      std::vector<std::vector<Word>> counters;
      std::vector<Word> flatInboxes;
      std::size_t rounds, words, maxRound;

      bool operator==(const Result&) const = default;
    } res;
    res.counters = eng.fetchKernel(k);
    for (const auto& inbox : eng.snapshotInboxes())
      for (const Delivery& d : inbox) {
        res.flatInboxes.push_back(d.src);
        res.flatInboxes.insert(res.flatInboxes.end(), d.payload.begin(),
                               d.payload.end());
      }
    res.rounds = eng.rounds();
    res.words = eng.totalWordsSent();
    res.maxRound = eng.maxRoundWords();
    return res;
  };
  for (const bool pram : {false, true}) {
    const auto base = run(1, 1, pram);
    EXPECT_EQ(base.rounds, 4u);
    EXPECT_EQ(base, run(1, 2, pram)) << "2 shards, pram=" << pram;
    EXPECT_EQ(base, run(2, 4, pram)) << "4 shards, pram=" << pram;
  }
}

TEST(ResidentWorkers, KernelThrowMidRoundAbortsRoundForAllShards) {
  RoundEngine eng(EngineConfig{8, 1, 4, /*resident=*/1},
                  std::make_unique<MpcTopology>(16));
  const KernelId k = eng.registerKernel(
      CounterKernel::kernelName(),
      [] { return std::make_unique<CounterKernel>(); });
  eng.step(k);
  EXPECT_EQ(eng.rounds(), 1u);
  const auto inboxesBefore = eng.snapshotInboxes();
  // Machine 2 (shard 1) throws: the round aborts for every shard — ledger
  // untouched, no delivery of the aborted round lands in any resident
  // inbox — and the engine (and its workers) stay usable. Kernel state
  // mutated before the throw is unspecified per machine (exactly like
  // in-process captured state: whether a machine's step ran before the
  // abort depends on the schedule), which is why the bit-identicality
  // guarantee only covers committed rounds.
  EXPECT_THROW(eng.step(k, {1}), std::runtime_error);
  EXPECT_EQ(eng.rounds(), 1u);
  const auto inboxesAfter = eng.snapshotInboxes();
  ASSERT_EQ(inboxesBefore.size(), inboxesAfter.size());
  for (std::size_t m = 0; m < inboxesBefore.size(); ++m) {
    ASSERT_EQ(inboxesBefore[m].size(), inboxesAfter[m].size());
    for (std::size_t i = 0; i < inboxesBefore[m].size(); ++i) {
      EXPECT_EQ(inboxesBefore[m][i].src, inboxesAfter[m][i].src);
      EXPECT_EQ(inboxesBefore[m][i].payload, inboxesAfter[m][i].payload);
    }
  }
  eng.step(k);
  EXPECT_EQ(eng.rounds(), 2u);
}

TEST(ResidentWorkers, CapacityViolationInKernelRoundKeepsType) {
  // A kernel round that violates the topology must abort with the same
  // loud CapacityError as the in-process engine, workers still alive.
  class Flooder final : public runtime::StepKernel {
   public:
    std::vector<Message> step(const runtime::KernelCtx& ctx) override {
      if (!ctx.args.empty())
        return {{0, {1, 2, 3, 4, 5}}};  // 8 machines x 5 words > cap 16
      return {{0, {1}}};
    }
  };
  RoundEngine eng(EngineConfig{8, 1, 4, /*resident=*/1},
                  std::make_unique<MpcTopology>(16));
  const KernelId k = eng.registerKernel(
      "test.flooder", [] { return std::make_unique<Flooder>(); });
  EXPECT_THROW(eng.step(k, {1}), CapacityError);
  EXPECT_EQ(eng.rounds(), 0u);
  eng.step(k);  // workers survived the abort
  EXPECT_EQ(eng.rounds(), 1u);
}

TEST(ResidentWorkers, PostForkRegistrationResolvesViaGlobalRegistry) {
  // The workers fork at the first round; a kernel registered afterwards can
  // only reach them by name through the process-global registry (that is
  // how distSort's kernels appear mid-run, e.g. in the tradeoff
  // contraction).
  runtime::registerGlobalKernel("test.counter.global", [] {
    return std::make_unique<CounterKernel>();
  });
  RoundEngine eng(EngineConfig{8, 1, 4, /*resident=*/1},
                  std::make_unique<MpcTopology>(16));
  std::vector<std::vector<Message>> out(8);
  out[0].push_back({5, {11}});
  eng.exchange(std::move(out));  // forks the workers
  ASSERT_TRUE(eng.shardBackend()->started());
  const KernelId k = eng.registerKernel("test.counter.global");
  for (int r = 0; r < 3; ++r) eng.step(k);
  RoundEngine ref(EngineConfig{8, 1, 1}, std::make_unique<MpcTopology>(16));
  const KernelId rk = ref.registerKernel("test.counter.global");
  for (int r = 0; r < 3; ++r) ref.step(rk);
  EXPECT_EQ(eng.fetchKernel(k), ref.fetchKernel(rk));
  // An unresolvable post-fork registration fails loudly at registration.
  EXPECT_THROW(
      eng.registerKernel("test.unresolvable",
                         [] { return std::make_unique<CounterKernel>(); }),
      std::logic_error);
}

TEST(ResidentWorkers, WorkerDeathBetweenRoundsSurfacesAsShardError) {
  auto eng = std::make_unique<RoundEngine>(EngineConfig{8, 1, 4, /*resident=*/1},
                                           std::make_unique<MpcTopology>(16));
  auto oneRound = [&] {
    std::vector<std::vector<Message>> out(8);
    out[1].push_back({6, {9}});
    eng->exchange(std::move(out));
  };
  oneRound();
  const std::vector<pid_t> pids = eng->shardBackend()->workerPids();
  ASSERT_EQ(pids.size(), 4u);
  // Kill a worker while the engine is idle between rounds; the next round
  // must throw ShardError (not hang, not return garbage), and the engine
  // stays failed afterwards.
  ASSERT_EQ(::kill(pids[2], SIGKILL), 0);
  EXPECT_THROW(oneRound(), ShardError);
  EXPECT_THROW(oneRound(), ShardError);
  // Destruction must leave no zombies: every worker pid is fully reaped, so
  // a later waitpid knows nothing about them.
  eng.reset();
  for (const pid_t pid : pids) {
    int st = 0;
    EXPECT_EQ(::waitpid(pid, &st, WNOHANG), -1);
    EXPECT_EQ(errno, ECHILD);
  }
}

TEST(ResidentWorkers, DestructorReapsIdleWorkers) {
  std::vector<pid_t> pids;
  {
    RoundEngine eng(EngineConfig{6, 1, 3, /*resident=*/1},
                    std::make_unique<MpcTopology>(16));
    std::vector<std::vector<Message>> out(6);
    out[0].push_back({5, {1}});
    eng.exchange(std::move(out));
    pids = eng.shardBackend()->workerPids();
    ASSERT_EQ(pids.size(), 3u);
  }
  for (const pid_t pid : pids) {
    int st = 0;
    EXPECT_EQ(::waitpid(pid, &st, WNOHANG), -1) << "worker leaked: " << pid;
    EXPECT_EQ(errno, ECHILD);
  }
}

TEST(ResidentWorkers, LegacyForkPerRoundBackendStaysSelectableAndIdentical) {
  // MPCSPAN_RESIDENT=0 / EngineConfig::resident=0 keeps the fork-per-round
  // dispatch (the bench_micro baseline) — bit-identical results, workers
  // forked per round (no resident pids).
  const Trace base = runMpcWorkload(1, 1);
  auto runLegacy = [&](std::size_t shards) {
    const std::size_t p = 16;
    EngineConfig cfg{p, 1, shards};
    cfg.resident = 0;
    RoundEngine eng(cfg, std::make_unique<MpcTopology>(6 * p));
    EXPECT_FALSE(eng.residentShards());
    Trace trace;
    std::uint64_t h = 42;
    for (int round = 0; round < 8; ++round) {
      std::vector<std::vector<Message>> out(p);
      for (std::size_t src = 0; src < p; ++src)
        for (std::size_t k = 0; k < 3; ++k) {
          h = h * 6364136223846793005ULL + 1442695040888963407ULL;
          const std::size_t dst = (src + 1 + (h >> 33) % (p - 1)) % p;
          if (k == 0)
            out[src].push_back({dst, {h}});
          else
            out[src].push_back({dst, {h, h ^ src, h >> 7}});
        }
      recordRound(trace, eng.exchange(std::move(out)));
    }
    finishTrace(trace, eng);
    EXPECT_TRUE(eng.shardBackend()->workerPids().empty());
    return trace;
  };
  EXPECT_EQ(base, runLegacy(4));

  ASSERT_EQ(::setenv("MPCSPAN_RESIDENT", "0", 1), 0);
  {
    RoundEngine eng(EngineConfig{8, 1, 2}, std::make_unique<MpcTopology>(8));
    EXPECT_FALSE(eng.residentShards());
  }
  ASSERT_EQ(::unsetenv("MPCSPAN_RESIDENT"), 0);
  {
    RoundEngine eng(EngineConfig{8, 1, 2}, std::make_unique<MpcTopology>(8));
    EXPECT_TRUE(eng.residentShards());
  }
}

TEST(ResidentWorkers, ClosureStepAndKernelRoundsInterleave) {
  // The legacy closure step (fork-per-round compute wave) and kernel rounds
  // share one logical inbox stream; interleaving them must match the
  // in-process engine exactly.
  auto run = [](std::size_t shards) {
    RoundEngine eng(EngineConfig{6, 1, shards, /*resident=*/1},
                    std::make_unique<MpcTopology>(32));
    const KernelId k = eng.registerKernel(
        CounterKernel::kernelName(),
        [] { return std::make_unique<CounterKernel>(); });
    eng.step(k);
    eng.step(k);
    // Closure step: forwards each machine's inbox sum to machine 0.
    eng.step([](std::size_t m, const std::vector<Delivery>& inbox)
                 -> std::vector<Message> {
      Word sum = m;
      for (const Delivery& d : inbox) sum += d.payload.front();
      return {{0, {sum}}};
    });
    std::vector<Word> flat;
    for (const Delivery& d : eng.inbox(0)) {
      flat.push_back(d.src);
      flat.insert(flat.end(), d.payload.begin(), d.payload.end());
    }
    flat.push_back(eng.rounds());
    flat.push_back(eng.totalWordsSent());
    return flat;
  };
  const auto base = run(1);
  EXPECT_EQ(base, run(2));
  EXPECT_EQ(base, run(3));
}

// --- Facades running sharded, end to end. ---

TEST(ShardedFacades, DistributedBaswanaSenMatchesHostAcrossShards) {
  Rng rng(1234);
  const Graph g = gnmRandom(150, 600, rng, {WeightModel::kUniform, 20.0}, true);
  const SpannerResult host = buildBaswanaSen(g, {.k = 3, .seed = 7});

  const MpcConfig cfg = MpcConfig::forInput(8 * g.numEdges(), 0.6, 3.0);
  MpcSimulator sharded(cfg, /*threads=*/2, /*shards=*/3);
  ASSERT_EQ(sharded.numShards(), 3u);
  const DistSpannerResult dist = buildDistributedBaswanaSen(sharded, g, 3, 7);
  EXPECT_EQ(dist.edges, host.edges);

  MpcSimulator inProcess(cfg, /*threads=*/1, /*shards=*/1);
  const DistSpannerResult ref = buildDistributedBaswanaSen(inProcess, g, 3, 7);
  EXPECT_EQ(dist.edges, ref.edges);
  EXPECT_EQ(dist.simulatorRounds, ref.simulatorRounds);
  EXPECT_EQ(dist.wordsMoved, ref.wordsMoved);
}

TEST(ShardedFacades, CliqueDirectRoundMatchesAcrossShards) {
  auto run = [](std::size_t shards) {
    CongestedClique cc(9, /*threads=*/1, shards);
    std::vector<CongestedClique::Msg> msgs;
    for (VertexId v = 0; v < 9; ++v)
      for (VertexId d = 0; d < 9; ++d)
        if (d != v && (v + d) % 3 == 0) msgs.push_back({v, d, {v * 10 + d}});
    return cc.directRound(msgs);
  };
  const auto base = run(1);
  EXPECT_EQ(base, run(3));
  EXPECT_EQ(base, run(9));
}

TEST(ShardedFacades, LeaderForestOnShardedPramEngineMatchesHost) {
  const std::size_t n = 48;
  LeaderForest plain(n);
  LeaderForest backed(n);
  RoundEngine eng(EngineConfig{n, 2, 4}, std::make_unique<PramTopology>());
  backed.attachEngine(&eng);
  std::uint64_t h = 7;
  for (int i = 0; i < 120; ++i) {
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto a = static_cast<std::uint32_t>((h >> 33) % n);
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto b = static_cast<std::uint32_t>((h >> 33) % n);
    EXPECT_EQ(plain.merge(a, b), backed.merge(a, b));
  }
  for (std::uint32_t v = 0; v < n; ++v)
    EXPECT_EQ(plain.leader(v), backed.leader(v));
  EXPECT_EQ(eng.rounds(), static_cast<std::size_t>(backed.depthCharged()));
  EXPECT_EQ(eng.totalWordsSent(),
            static_cast<std::size_t>(backed.workCharged()));
}

}  // namespace
}  // namespace mpcspan
