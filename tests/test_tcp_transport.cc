// The TCP shard transport: resident STEP rounds over a rendezvous-formed
// loopback mesh must be bit-identical to the shm ring, the socket mesh, and
// the in-process reference (rounds, ledger, kernel state, resident inbox
// contents) across shard and thread counts on all three topologies;
// oversized ~1.6 MB frames stream through the poll-paced channels; and
// every failure mode of a real network — refused dial, accept timeout, a
// stray client speaking garbage, a mesh dial from a stale epoch, a peer
// dying mid-exchange — surfaces as ShardError within the deadline, never a
// hang, and never leaks a worker process.
#include "runtime/shard/tcp_transport.hpp"

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "runtime/round_engine.hpp"
#include "runtime/shard/sharded_engine.hpp"
#include "runtime/shard/transport.hpp"
#include "runtime/shard/wire.hpp"

namespace mpcspan {
namespace {

using runtime::CliqueTopology;
using runtime::Delivery;
using runtime::EngineConfig;
using runtime::KernelCtx;
using runtime::KernelId;
using runtime::Message;
using runtime::MpcTopology;
using runtime::PramTopology;
using runtime::RoundEngine;
using runtime::StepKernel;
using runtime::Topology;
using runtime::shard::Channel;
using runtime::shard::formTcpMesh;
using runtime::shard::readControlHello;
using runtime::shard::ShardError;
using runtime::shard::tcpConnect;
using runtime::shard::TcpListener;
using runtime::shard::TcpPeerAddr;
using runtime::shard::WireFd;

/// Deterministic cross-shard-heavy kernel (the test_shm_exchange probe):
/// per-machine owned state feeds the next round's emissions, so any
/// divergence in routing or merge order compounds across rounds.
class TcpProbeKernel final : public StepKernel {
 public:
  static std::string kernelName() { return "test.tcpprobe"; }

  std::vector<Message> step(const KernelCtx& ctx) override {
    ensureSized(ctx);
    const Word mode = ctx.args.empty() ? 0 : ctx.args[0];
    const std::size_t n = ctx.numMachines;
    const std::size_t m = ctx.machine;
    Word sum = 1;
    for (const Delivery& d : ctx.inbox) sum += 3 * d.src + d.payload.front();
    state_[m] += sum;
    const Word r = ++round_[m];
    std::vector<Message> out;
    if (mode == 0) {
      out.push_back({(m + r) % n, {state_[m], state_[m] ^ m, r}});
      out.push_back({(m * 3 + 1) % n, {state_[m]}});
      if (m % 2 == 0) out.push_back({(m + n - 1) % n, {r, static_cast<Word>(m)}});
    } else if (mode == 1) {
      out.push_back({(m + r) % n, {state_[m]}});
    } else {
      out.push_back({(m * 5 + r) % 4, {state_[m]}});
    }
    return out;
  }

  std::vector<Word> fetch(const KernelCtx& ctx) override {
    ensureSized(ctx);
    return {state_[ctx.machine], round_[ctx.machine]};
  }

 private:
  void ensureSized(const KernelCtx& ctx) {
    std::call_once(sized_, [&] {
      state_.resize(ctx.numMachines);
      round_.resize(ctx.numMachines);
    });
  }

  std::once_flag sized_;
  std::vector<Word> state_;
  std::vector<Word> round_;
};

std::unique_ptr<Topology> makeTopology(int mode) {
  if (mode == 0) return std::make_unique<MpcTopology>(64);
  if (mode == 1) return std::make_unique<CliqueTopology>();
  return std::make_unique<PramTopology>();
}

/// Everything observable after a kernel-round workload.
struct Result {
  std::vector<std::vector<Word>> fetched;
  std::vector<Word> flatInboxes;
  std::size_t rounds = 0, words = 0, maxRound = 0;

  friend bool operator==(const Result&, const Result&) = default;
};

Result observe(RoundEngine& eng, KernelId k) {
  Result res;
  res.fetched = eng.fetchKernel(k);
  for (const auto& inbox : eng.snapshotInboxes())
    for (const Delivery& d : inbox) {
      res.flatInboxes.push_back(d.src);
      res.flatInboxes.insert(res.flatInboxes.end(), d.payload.begin(),
                             d.payload.end());
    }
  res.rounds = eng.rounds();
  res.words = eng.totalWordsSent();
  res.maxRound = eng.maxRoundWords();
  return res;
}

Result runWorkload(int mode, std::size_t threads, std::size_t shards,
                   runtime::Transport transport) {
  const std::size_t n = 12;
  EngineConfig cfg{n, threads, shards, /*resident=*/1, /*peerExchange=*/1,
                   transport};
  RoundEngine eng(cfg, makeTopology(mode));
  const KernelId k = eng.registerKernel(
      TcpProbeKernel::kernelName(),
      [] { return std::make_unique<TcpProbeKernel>(); });
  for (int i = 0; i < 5; ++i) eng.step(k, {static_cast<Word>(mode)});
  // One free data-placement round rides the same exchange machinery.
  eng.stepShuffle(k, {static_cast<Word>(mode)});
  return observe(eng, k);
}

TEST(TcpTransport, BitIdenticalToShmSocketAndInProcessOnAllTopologies) {
  for (const int mode : {0, 1, 2}) {
    const Result base = runWorkload(mode, 1, 1, runtime::Transport::kDefault);
    EXPECT_EQ(base.rounds, 5u) << "mode " << mode;
    for (const std::size_t shards : {2u, 4u})
      for (const std::size_t threads : {1u, 2u}) {
        EXPECT_EQ(base,
                  runWorkload(mode, threads, shards, runtime::Transport::kTcp))
            << "mode " << mode << ", " << shards << " shards x " << threads
            << " threads, tcp";
      }
    // The cross-transport triangle at one representative size: tcp == shm
    // == socket == in-process.
    EXPECT_EQ(base, runWorkload(mode, 2, 4, runtime::Transport::kShmRing))
        << "mode " << mode << " shm";
    EXPECT_EQ(base, runWorkload(mode, 2, 4, runtime::Transport::kSocketMesh))
        << "mode " << mode << " socket";
  }
}

TEST(TcpTransport, BackendSelectionReportsTcp) {
  RoundEngine eng(EngineConfig{8, 1, 2, 1, 1, runtime::Transport::kTcp},
                  std::make_unique<MpcTopology>(16));
  EXPECT_TRUE(eng.residentShards());
  EXPECT_TRUE(eng.peerMeshShards());
  EXPECT_TRUE(eng.tcpMeshShards());
  EXPECT_FALSE(eng.shmRingShards());
}

/// Emits one ~1.6 MB payload per machine per round: thousands of loopback
/// segments per frame, so the poll-paced nonblocking channel I/O must
/// stream and backpressure correctly in both directions at once.
class BigFrameKernel final : public StepKernel {
 public:
  static constexpr std::size_t kWords = 200000;  // 1.6 MB of payload

  std::vector<Message> step(const KernelCtx& ctx) override {
    ensureSized(ctx);
    const std::size_t n = ctx.numMachines;
    const std::size_t m = ctx.machine;
    Word seed = m + 1;
    for (const Delivery& d : ctx.inbox) seed += d.payload[0] + d.payload[kWords / 2];
    seen_[m] += seed;
    std::vector<Word> pay(kWords);
    for (std::size_t w = 0; w < kWords; ++w)
      pay[w] = seed * 2654435761u + w;
    return {{(m + 1) % n, std::move(pay)}};
  }

  std::vector<Word> fetch(const KernelCtx& ctx) override {
    ensureSized(ctx);
    return {seen_[ctx.machine]};
  }

 private:
  void ensureSized(const KernelCtx& ctx) {
    std::call_once(sized_, [&] { seen_.resize(ctx.numMachines); });
  }

  std::once_flag sized_;
  std::vector<Word> seen_;
};

Result runBigFrames(std::size_t shards, runtime::Transport transport) {
  const std::size_t n = 4;
  EngineConfig cfg{n, 1, shards, 1, 1, transport};
  RoundEngine eng(cfg, std::make_unique<MpcTopology>(BigFrameKernel::kWords));
  const KernelId k = eng.registerKernel(
      "test.bigframe", [] { return std::make_unique<BigFrameKernel>(); });
  eng.step(k);
  eng.step(k);
  return observe(eng, k);
}

TEST(TcpTransport, BigFramesStreamOverLoopback) {
  const Result base = runBigFrames(1, runtime::Transport::kDefault);
  for (const std::size_t shards : {2u, 4u})
    EXPECT_EQ(base, runBigFrames(shards, runtime::Transport::kTcp))
        << shards << " shards, tcp, 1.6 MB frames";
}

// --- Failure modes. Every one must be a ShardError within the deadline. ---

TEST(TcpTransport, RefusedDialThrowsShardError) {
  // Grab an ephemeral port the kernel just proved free, close the
  // listener, and dial it: connection refused, immediately.
  std::uint16_t deadPort = 0;
  {
    TcpListener l(0);
    deadPort = l.port();
  }
  EXPECT_THROW(tcpConnect("127.0.0.1", deadPort, 2000), ShardError);
}

TEST(TcpTransport, AcceptDeadlineExpiresAsShardError) {
  TcpListener l(0);
  EXPECT_THROW(l.accept(/*deadlineMs=*/50), ShardError);
}

TEST(TcpTransport, StrayClientGarbageRejectedAtControlHello) {
  TcpListener l(0);
  std::thread stray([&] {
    try {
      WireFd fd = tcpConnect("127.0.0.1", l.port(), 2000);
      const char junk[32] = "GET / HTTP/1.1\r\n\r\n";
      fd.writeAll(junk, sizeof junk);
    } catch (...) {
      // The acceptor may slam the door first; either way is a pass.
    }
  });
  Channel ch(l.accept(2000), 2000);
  EXPECT_THROW(readControlHello(ch), ShardError);
  stray.join();
}

TEST(TcpTransport, StaleEpochMeshDialRejectedBothSides) {
  // Shard 1 dials shard 0's mesh listener carrying the wrong epoch: the
  // acceptor must reject the handshake as stale, and the dialer — whose
  // ack never arrives — must fail its own handshake rather than hang.
  constexpr std::uint64_t kGoodEpoch = 0x1234;
  constexpr std::uint64_t kBadEpoch = 0x9999;
  TcpListener mesh0(0);
  TcpListener mesh1(0);
  std::vector<TcpPeerAddr> roster{{"127.0.0.1", mesh0.port()},
                                  {"127.0.0.1", mesh1.port()}};

  std::exception_ptr acceptErr;
  std::thread acceptor([&] {
    try {
      formTcpMesh(/*self=*/0, kGoodEpoch, mesh0, roster, 4000);
    } catch (...) {
      acceptErr = std::current_exception();
    }
  });
  EXPECT_THROW(formTcpMesh(/*self=*/1, kBadEpoch, mesh1, roster, 4000),
               ShardError);
  acceptor.join();
  ASSERT_TRUE(acceptErr);
  EXPECT_THROW(std::rethrow_exception(acceptErr), ShardError);
}

TEST(TcpTransport, PeerDeathMidExchangeSurfacesShardErrorForAll) {
  // The injected fault (MPCSPAN_TEST_PEER_DIE_SHARD, read in the worker
  // loop) kills shard 1 right after the phase-A go — mid mesh exchange
  // from every peer's point of view. The engine must fail loudly within
  // the tcp deadline (not hang), stay failed, and reap every worker.
  ASSERT_EQ(::setenv("MPCSPAN_TEST_PEER_DIE_SHARD", "1", 1), 0);
  std::vector<pid_t> pids;
  {
    RoundEngine eng(EngineConfig{8, 1, 4, 1, 1, runtime::Transport::kTcp},
                    std::make_unique<MpcTopology>(32));
    const KernelId k = eng.registerKernel(
        TcpProbeKernel::kernelName(),
        [] { return std::make_unique<TcpProbeKernel>(); });
    // Fork the workers on a round that does not reach the fault hook.
    std::vector<std::vector<Message>> out(8);
    out[0].push_back({7, {1}});
    eng.exchange(std::move(out));
    pids = eng.shardBackend()->workerPids();
    ASSERT_EQ(pids.size(), 4u);
    EXPECT_THROW(eng.step(k), ShardError);
    EXPECT_THROW(eng.step(k), ShardError);  // the backend stays failed
  }
  ASSERT_EQ(::unsetenv("MPCSPAN_TEST_PEER_DIE_SHARD"), 0);
  for (const pid_t pid : pids) {
    int st = 0;
    EXPECT_EQ(::waitpid(pid, &st, WNOHANG), -1) << "worker leaked: " << pid;
    EXPECT_EQ(errno, ECHILD);
  }
}

TEST(TcpTransport, ClosureStepsAndBlocksRideTheTcpBackend) {
  // The non-kernel surfaces — closure exchange rounds and worker-resident
  // blocks — must behave identically over the tcp backend.
  RoundEngine tcp(EngineConfig{6, 1, 3, 1, 1, runtime::Transport::kTcp},
                  std::make_unique<MpcTopology>(64));
  RoundEngine ref(EngineConfig{6, 1, 1},
                  std::make_unique<MpcTopology>(64));
  for (RoundEngine* eng : {&tcp, &ref}) {
    std::vector<std::vector<Word>> per(6);
    for (std::size_t m = 0; m < 6; ++m) per[m] = {m * 10 + 1, m * 10 + 2};
    const std::uint64_t h = eng->createBlocks(per);
    std::vector<std::vector<Message>> out(6);
    for (std::size_t m = 0; m < 6; ++m)
      out[m].push_back({(m + 1) % 6, {m, m ^ 7}});
    eng->exchange(std::move(out));
    EXPECT_EQ(eng->readBlocks(h), per);
    eng->freeBlocks(h);
  }
  EXPECT_EQ(tcp.rounds(), ref.rounds());
  EXPECT_EQ(tcp.totalWordsSent(), ref.totalWordsSent());
}

}  // namespace
}  // namespace mpcspan
