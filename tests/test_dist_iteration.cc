// Equivalence of the distributed iteration kernel (real tuples through the
// MPC simulator) with the host-side reference — the library's evidence that
// the engine's charged supersteps are implementable as claimed.
#include "mpc/dist_iteration.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "spanner/engine.hpp"

namespace mpcspan {
namespace {

std::vector<VertexId> identity(std::size_t n) {
  std::vector<VertexId> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

class DistIterationEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(DistIterationEquivalence, MatchesReferenceFirstEpoch) {
  const auto [seed, p] = GetParam();
  Rng rng(seed);
  const Graph g = gnmRandom(600, 3600, rng, {WeightModel::kUniform, 20.0}, true);
  const std::vector<VertexId> superOf = identity(g.numVertices());
  const std::vector<VertexId> clusterOf = identity(g.numVertices());
  const std::vector<char> sampled =
      HashCoinPolicy::draw(std::vector<char>(g.numVertices(), 1), p, seed, 1);

  MpcSimulator sim(MpcConfig::forInput(4 * g.numEdges(), 0.6, 3.0));
  const DistIterationResult dist =
      distIterationKernel(sim, g, superOf, clusterOf, sampled);
  const DistIterationResult ref =
      referenceIterationKernel(g, superOf, clusterOf, sampled);

  EXPECT_EQ(dist.groupMins, ref.groupMins);
  EXPECT_EQ(dist.joins, ref.joins);
  // Two sorts + two segmented mins, each O(1) rounds.
  EXPECT_LE(dist.roundsUsed, 16u);
  EXPECT_GT(dist.roundsUsed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndProbs, DistIterationEquivalence,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Values(0.1, 0.4, 0.8)),
    [](const auto& info) {
      return "s" + std::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 10));
    });

TEST(DistIteration, MidRunClusteringWithExitsAndSupernodes) {
  // Simulate a later-epoch state: some vertices contracted into supernodes,
  // some exited, clusters spanning several supernodes.
  Rng rng(9);
  const Graph g = gnmRandom(400, 2400, rng, {WeightModel::kUniform, 9.0}, true);
  const std::size_t n = g.numVertices();
  std::vector<VertexId> superOf(n);
  for (VertexId v = 0; v < n; ++v)
    superOf[v] = (v % 10 == 9) ? kNoVertex : v / 2;  // pairs + 10% inactive
  const std::size_t nSuper = n / 2;
  std::vector<VertexId> clusterOf(nSuper);
  for (VertexId s = 0; s < nSuper; ++s)
    clusterOf[s] = (s % 7 == 6) ? kNoVertex : (s / 4) * 4;  // 4-super clusters
  std::vector<char> sampled(nSuper, 0);
  for (VertexId s = 0; s < nSuper; s += 4) sampled[s] = (s / 4) % 3 == 0;

  MpcSimulator sim(MpcConfig::forInput(4 * g.numEdges(), 0.6, 3.0));
  const DistIterationResult dist =
      distIterationKernel(sim, g, superOf, clusterOf, sampled);
  const DistIterationResult ref =
      referenceIterationKernel(g, superOf, clusterOf, sampled);
  EXPECT_EQ(dist.groupMins, ref.groupMins);
  EXPECT_EQ(dist.joins, ref.joins);
}

TEST(DistIteration, NoSampledClustersMeansNoJoins) {
  Rng rng(11);
  const Graph g = gnmRandom(100, 300, rng, {}, true);
  MpcSimulator sim(MpcConfig::forInput(4 * g.numEdges(), 0.6, 3.0));
  const auto r = distIterationKernel(sim, g, identity(100), identity(100),
                                     std::vector<char>(100, 0));
  EXPECT_TRUE(r.joins.empty());
  EXPECT_FALSE(r.groupMins.empty());
}

TEST(DistIteration, AllSampledMeansNoCandidates) {
  Rng rng(13);
  const Graph g = gnmRandom(100, 300, rng, {}, true);
  MpcSimulator sim(MpcConfig::forInput(4 * g.numEdges(), 0.6, 3.0));
  const auto r = distIterationKernel(sim, g, identity(100), identity(100),
                                     std::vector<char>(100, 1));
  EXPECT_TRUE(r.groupMins.empty());
  EXPECT_TRUE(r.joins.empty());
}

TEST(DistIteration, JoinsPickStrictMinimumWithEdgeIdTieBreak) {
  // Star around 0 with equal weights: cluster roots 1..4 sampled; vertex 0
  // unsampled must pick the smallest edge id among the ties.
  GraphBuilder b(5);
  for (VertexId v = 1; v < 5; ++v) b.addEdge(0, v, 2.0);
  const Graph g = b.build();
  std::vector<char> sampled{0, 1, 1, 1, 1};
  MpcSimulator sim(MpcConfig::forInput(64, 0.6, 3.0));
  const auto r =
      distIterationKernel(sim, g, identity(5), identity(5), sampled);
  ASSERT_EQ(r.joins.size(), 1u);
  EXPECT_EQ(r.joins[0].v, 0u);
  EXPECT_EQ(r.joins[0].id, 0u);
  EXPECT_EQ(r.joins[0].cluster, g.edge(0).v);
}

}  // namespace
}  // namespace mpcspan
