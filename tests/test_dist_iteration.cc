// Cross-substrate equivalence of the spanner growth-iteration kernel: the
// host reference (ClusterEngine's decision procedure), the MPC RoundEngine
// kernel (real tuples through capacity-enforced rounds), and the Congested
// Clique RoundEngine kernel (real label round + Lenzen-accounted
// aggregation) must produce bit-identical group minima and join decisions —
// the library's evidence that "same algorithm, different model" is exact.
#include "mpc/dist_iteration.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "cclique/iteration_cc.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "spanner/engine.hpp"

namespace mpcspan {
namespace {

std::vector<VertexId> identity(std::size_t n) {
  std::vector<VertexId> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

class DistIterationEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(DistIterationEquivalence, HostMpcAndCliqueSubstratesAgree) {
  const auto [seed, p] = GetParam();
  Rng rng(seed);
  const Graph g = gnmRandom(600, 3600, rng, {WeightModel::kUniform, 20.0}, true);
  const std::vector<VertexId> superOf = identity(g.numVertices());
  const std::vector<VertexId> clusterOf = identity(g.numVertices());
  const std::vector<char> sampled =
      HashCoinPolicy::draw(std::vector<char>(g.numVertices(), 1), p, seed, 1);

  // Host reference (the ClusterEngine decision procedure).
  const DistIterationResult ref =
      referenceIterationKernel(g, superOf, clusterOf, sampled);

  // MPC substrate: real sample sorts and segmented minima.
  MpcSimulator sim(MpcConfig::forInput(4 * g.numEdges(), 0.6, 3.0));
  const DistIterationResult dist =
      distIterationKernel(sim, g, superOf, clusterOf, sampled);
  EXPECT_EQ(dist.groupMins, ref.groupMins);
  EXPECT_EQ(dist.joins, ref.joins);
  // Two sorts + two segmented mins, each O(1) rounds.
  EXPECT_LE(dist.roundsUsed, 16u);
  EXPECT_GT(dist.roundsUsed, 0u);

  // Clique substrate: real label round + accounted aggregation. Join
  // decisions must be bit-identical to both other substrates.
  CongestedClique cc(g.numVertices());
  const DistIterationResult clique =
      cliqueIterationKernel(cc, g, superOf, clusterOf, sampled);
  EXPECT_EQ(clique.groupMins, ref.groupMins);
  EXPECT_EQ(clique.joins, ref.joins);
  EXPECT_GT(clique.roundsUsed, 0u);
  EXPECT_GT(cc.totalWords(), 0u);
}

TEST(DistIteration, MpcKernelIsThreadCountInvariant) {
  Rng rng(21);
  const Graph g = gnmRandom(500, 3000, rng, {WeightModel::kUniform, 12.0}, true);
  const std::vector<VertexId> ident = identity(g.numVertices());
  const std::vector<char> sampled =
      HashCoinPolicy::draw(std::vector<char>(g.numVertices(), 1), 0.3, 21, 1);

  MpcSimulator one(MpcConfig::forInput(4 * g.numEdges(), 0.6, 3.0), /*threads=*/1);
  MpcSimulator four(MpcConfig::forInput(4 * g.numEdges(), 0.6, 3.0), /*threads=*/4);
  const DistIterationResult a = distIterationKernel(one, g, ident, ident, sampled);
  const DistIterationResult b = distIterationKernel(four, g, ident, ident, sampled);
  EXPECT_EQ(a.groupMins, b.groupMins);
  EXPECT_EQ(a.joins, b.joins);
  EXPECT_EQ(a.roundsUsed, b.roundsUsed);
  EXPECT_EQ(one.rounds(), four.rounds());
  EXPECT_EQ(one.totalWordsSent(), four.totalWordsSent());
  EXPECT_EQ(one.maxRoundWords(), four.maxRoundWords());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndProbs, DistIterationEquivalence,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Values(0.1, 0.4, 0.8)),
    [](const auto& info) {
      return "s" + std::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 10));
    });

TEST(DistIteration, MidRunClusteringWithExitsAndSupernodes) {
  // Simulate a later-epoch state: some vertices contracted into supernodes,
  // some exited, clusters spanning several supernodes.
  Rng rng(9);
  const Graph g = gnmRandom(400, 2400, rng, {WeightModel::kUniform, 9.0}, true);
  const std::size_t n = g.numVertices();
  std::vector<VertexId> superOf(n);
  for (VertexId v = 0; v < n; ++v)
    superOf[v] = (v % 10 == 9) ? kNoVertex : v / 2;  // pairs + 10% inactive
  const std::size_t nSuper = n / 2;
  std::vector<VertexId> clusterOf(nSuper);
  for (VertexId s = 0; s < nSuper; ++s)
    clusterOf[s] = (s % 7 == 6) ? kNoVertex : (s / 4) * 4;  // 4-super clusters
  std::vector<char> sampled(nSuper, 0);
  for (VertexId s = 0; s < nSuper; s += 4) sampled[s] = (s / 4) % 3 == 0;

  MpcSimulator sim(MpcConfig::forInput(4 * g.numEdges(), 0.6, 3.0));
  const DistIterationResult dist =
      distIterationKernel(sim, g, superOf, clusterOf, sampled);
  const DistIterationResult ref =
      referenceIterationKernel(g, superOf, clusterOf, sampled);
  EXPECT_EQ(dist.groupMins, ref.groupMins);
  EXPECT_EQ(dist.joins, ref.joins);

  // The clique substrate agrees on the mid-run state too (supernodes,
  // exits, multi-super clusters).
  CongestedClique cc(g.numVertices());
  const DistIterationResult clique =
      cliqueIterationKernel(cc, g, superOf, clusterOf, sampled);
  EXPECT_EQ(clique.groupMins, ref.groupMins);
  EXPECT_EQ(clique.joins, ref.joins);
}

TEST(DistIteration, NoSampledClustersMeansNoJoins) {
  Rng rng(11);
  const Graph g = gnmRandom(100, 300, rng, {}, true);
  MpcSimulator sim(MpcConfig::forInput(4 * g.numEdges(), 0.6, 3.0));
  const auto r = distIterationKernel(sim, g, identity(100), identity(100),
                                     std::vector<char>(100, 0));
  EXPECT_TRUE(r.joins.empty());
  EXPECT_FALSE(r.groupMins.empty());
}

TEST(DistIteration, AllSampledMeansNoCandidates) {
  Rng rng(13);
  const Graph g = gnmRandom(100, 300, rng, {}, true);
  MpcSimulator sim(MpcConfig::forInput(4 * g.numEdges(), 0.6, 3.0));
  const auto r = distIterationKernel(sim, g, identity(100), identity(100),
                                     std::vector<char>(100, 1));
  EXPECT_TRUE(r.groupMins.empty());
  EXPECT_TRUE(r.joins.empty());
}

TEST(DistIteration, ParallelEdgesAgreeAcrossSubstrates) {
  // GraphBuilder stages duplicate (u,v) pairs verbatim; the clique label
  // round must deduplicate per ordered pair while still producing one
  // candidate per edge id, like the other substrates.
  GraphBuilder b(4);
  b.addEdge(0, 1, 5.0);
  b.addEdge(0, 1, 3.0);  // parallel, lighter
  b.addEdge(1, 2, 2.0);
  b.addEdge(2, 3, 1.0);
  b.addEdge(0, 3, 4.0);
  const Graph g = b.build();
  const std::vector<char> sampled{0, 1, 0, 1};

  const auto ref = referenceIterationKernel(g, identity(4), identity(4), sampled);
  MpcSimulator sim(MpcConfig::forInput(64, 0.6, 3.0));
  const auto dist = distIterationKernel(sim, g, identity(4), identity(4), sampled);
  CongestedClique cc(4);
  const auto clique = cliqueIterationKernel(cc, g, identity(4), identity(4), sampled);
  EXPECT_EQ(dist.groupMins, ref.groupMins);
  EXPECT_EQ(dist.joins, ref.joins);
  EXPECT_EQ(clique.groupMins, ref.groupMins);
  EXPECT_EQ(clique.joins, ref.joins);
  // The lighter parallel edge wins its group.
  ASSERT_FALSE(ref.groupMins.empty());
  EXPECT_EQ(ref.groupMins[0].w, 3.0);
}

TEST(DistIteration, JoinsPickStrictMinimumWithEdgeIdTieBreak) {
  // Star around 0 with equal weights: cluster roots 1..4 sampled; vertex 0
  // unsampled must pick the smallest edge id among the ties.
  GraphBuilder b(5);
  for (VertexId v = 1; v < 5; ++v) b.addEdge(0, v, 2.0);
  const Graph g = b.build();
  std::vector<char> sampled{0, 1, 1, 1, 1};
  MpcSimulator sim(MpcConfig::forInput(64, 0.6, 3.0));
  const auto r =
      distIterationKernel(sim, g, identity(5), identity(5), sampled);
  ASSERT_EQ(r.joins.size(), 1u);
  EXPECT_EQ(r.joins[0].v, 0u);
  EXPECT_EQ(r.joins[0].id, 0u);
  EXPECT_EQ(r.joins[0].cluster, g.edge(0).v);
}

}  // namespace
}  // namespace mpcspan
