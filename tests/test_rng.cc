#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace mpcspan {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b();
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 9.0);
    ASSERT_GE(u, 3.0);
    ASSERT_LT(u, 9.0);
  }
}

TEST(Rng, NextBoundedStaysInRange) {
  Rng rng(13);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) ASSERT_LT(rng.next(bound), bound);
  }
}

TEST(Rng, NextBoundedCoversSmallRangeUniformly) {
  Rng rng(17);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) ++counts[rng.next(6)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, CoinRespectsProbabilityExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.coin(0.0));
    EXPECT_TRUE(rng.coin(1.0));
    EXPECT_FALSE(rng.coin(-1.0));
    EXPECT_TRUE(rng.coin(2.0));
  }
}

TEST(Rng, CoinEmpiricalRate) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.coin(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng base(31);
  Rng f0 = base.fork(0);
  Rng f1 = base.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += f0() == f1();
  EXPECT_LT(equal, 5);
  // Forks are deterministic functions of (seed, stream).
  Rng base2(31);
  Rng f0again = base2.fork(0);
  Rng f0ref = Rng(31).fork(0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(f0again(), f0ref());
}

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(12345), mix64(12345));
  std::set<std::uint64_t> outs;
  for (std::uint64_t x = 0; x < 1000; ++x) outs.insert(mix64(x));
  EXPECT_EQ(outs.size(), 1000u);
}

TEST(SplitMix64, AdvancesState) {
  std::uint64_t s = 5;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace mpcspan
