#include "spanner/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/tradeoff.hpp"
#include "spanner/verify.hpp"

namespace mpcspan {
namespace {

TEST(HashCoinPolicy, DeterministicAndRespectsActivity) {
  std::vector<char> active{1, 0, 1, 1, 0, 1};
  const auto a = HashCoinPolicy::draw(active, 0.5, 42, 7);
  const auto b = HashCoinPolicy::draw(active, 0.5, 42, 7);
  EXPECT_EQ(a, b);
  for (std::size_t i = 0; i < active.size(); ++i)
    if (!active[i]) {
      EXPECT_EQ(a[i], 0);
    }
}

TEST(HashCoinPolicy, ProbabilityExtremes) {
  std::vector<char> active(100, 1);
  const auto none = HashCoinPolicy::draw(active, 0.0, 1, 1);
  const auto all = HashCoinPolicy::draw(active, 1.0, 1, 1);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(none[i], 0);
    EXPECT_EQ(all[i], 1);
  }
}

TEST(HashCoinPolicy, EmpiricalRate) {
  std::vector<char> active(20000, 1);
  const auto s = HashCoinPolicy::draw(active, 0.25, 9, 3);
  std::size_t hits = 0;
  for (char c : s) hits += c != 0;
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.25, 0.02);
}

TEST(HashCoinPolicy, DifferentDrawKeysDiffer) {
  std::vector<char> active(1000, 1);
  const auto a = HashCoinPolicy::draw(active, 0.5, 42, 1);
  const auto b = HashCoinPolicy::draw(active, 0.5, 42, 2);
  EXPECT_NE(a, b);
}

TEST(TradeoffSchedule, EpochCountMatchesFormula) {
  for (std::uint32_t k : {2u, 4u, 8u, 16u, 32u, 64u}) {
    for (std::uint32_t t : {1u, 2u, 3u, 5u, 8u}) {
      const auto sched = tradeoffSchedule(1000, k, t);
      const auto expected = static_cast<std::size_t>(std::ceil(
          std::log(static_cast<double>(k)) / std::log(static_cast<double>(t) + 1.0) -
          1e-9));
      EXPECT_EQ(sched.size(), std::max<std::size_t>(expected, 1))
          << "k=" << k << " t=" << t;
      for (const auto& e : sched) {
        EXPECT_EQ(e.iterations, t);
        EXPECT_TRUE(e.contractAfter);
      }
    }
  }
}

TEST(TradeoffSchedule, ProbabilitiesDecayDoublyExponentially) {
  const auto sched = tradeoffSchedule(100000, 16, 1);
  ASSERT_EQ(sched.size(), 4u);
  const double n = 100000;
  for (std::size_t i = 0; i < sched.size(); ++i) {
    const double expected = std::pow(n, -std::pow(2.0, static_cast<double>(i)) / 16.0);
    EXPECT_NEAR(sched[i].prob(0), expected, 1e-12);
  }
}

TEST(TradeoffSchedule, KOneIsEmpty) {
  EXPECT_TRUE(tradeoffSchedule(100, 1, 1).empty());
}

TEST(Engine, KOneReturnsWholeGraph) {
  Rng rng(1);
  const Graph g = gnmRandom(50, 200, rng);
  const auto r = buildBaswanaSen(g, {.k = 1, .seed = 1});
  EXPECT_EQ(r.edges.size(), g.numEdges());
  EXPECT_DOUBLE_EQ(r.stretchBound, 1.0);
}

TEST(Engine, RejectsKZero) {
  Rng rng(2);
  const Graph g = cycleGraph(5, rng);
  EXPECT_THROW(ClusterEngine(g, 0, {}), std::invalid_argument);
}

TEST(Engine, SpannerEdgesAreValidAndUnique) {
  Rng rng(3);
  const Graph g = gnmRandom(300, 1500, rng, {WeightModel::kUniform, 10.0}, true);
  TradeoffParams p;
  p.k = 6;
  p.t = 2;
  p.seed = 5;
  const auto r = buildTradeoffSpanner(g, p);
  for (std::size_t i = 0; i < r.edges.size(); ++i) {
    ASSERT_LT(r.edges[i], g.numEdges());
    if (i > 0) {
      ASSERT_LT(r.edges[i - 1], r.edges[i]);
    }
  }
}

TEST(Engine, DeterministicForSameSeed) {
  Rng rng(4);
  const Graph g = gnmRandom(200, 900, rng, {WeightModel::kUniform, 5.0}, true);
  TradeoffParams p;
  p.k = 8;
  p.t = 2;
  p.seed = 99;
  const auto a = buildTradeoffSpanner(g, p);
  const auto b = buildTradeoffSpanner(g, p);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Engine, DifferentSeedsUsuallyDiffer) {
  Rng rng(5);
  const Graph g = gnmRandom(200, 900, rng, {WeightModel::kUniform, 5.0}, true);
  TradeoffParams p;
  p.k = 8;
  p.t = 2;
  p.seed = 1;
  const auto a = buildTradeoffSpanner(g, p);
  p.seed = 2;
  const auto b = buildTradeoffSpanner(g, p);
  EXPECT_NE(a.edges, b.edges);
}

TEST(Engine, RadiusRecurrenceMatchesCorollary59) {
  // r^(i) = ((2t+1)^i - 1)/2 after i full epochs (Corollary 5.9).
  Rng rng(6);
  const Graph g = gnmRandom(400, 2400, rng, {}, true);
  for (std::uint32_t t : {1u, 2u, 3u}) {
    TradeoffParams p;
    p.k = 16;
    p.t = t;
    p.seed = 3;
    const auto r = buildTradeoffSpanner(g, p);
    const double l = static_cast<double>(r.epochs);
    const double expected = (std::pow(2.0 * t + 1.0, l) - 1.0) / 2.0;
    EXPECT_DOUBLE_EQ(r.finalRadius, expected) << "t=" << t;
  }
}

TEST(Engine, CostLedgerCountsIterations) {
  Rng rng(7);
  const Graph g = gnmRandom(100, 400, rng, {}, true);
  TradeoffParams p;
  p.k = 8;
  p.t = 2;
  p.seed = 1;
  const auto r = buildTradeoffSpanner(g, p);
  EXPECT_EQ(r.cost.invocations(Prim::kSample), static_cast<long>(r.iterations));
  EXPECT_EQ(r.cost.invocations(Prim::kContraction), static_cast<long>(r.epochs));
  EXPECT_GE(r.cost.invocations(Prim::kFindMin), static_cast<long>(r.iterations));
}

TEST(Engine, ClusterCountsAreNonIncreasing) {
  Rng rng(8);
  const Graph g = gnmRandom(500, 2500, rng, {}, true);
  TradeoffParams p;
  p.k = 16;
  p.t = 1;
  p.seed = 11;
  const auto r = buildTradeoffSpanner(g, p);
  for (std::size_t i = 1; i < r.supernodesPerEpoch.size(); ++i)
    EXPECT_LE(r.supernodesPerEpoch[i], r.supernodesPerEpoch[i - 1]);
}

TEST(Engine, EmptyGraphAndSingleVertex) {
  const Graph empty = graphFromEdges(0, {});
  const auto r0 = buildBaswanaSen(empty, {.k = 3, .seed = 1});
  EXPECT_TRUE(r0.edges.empty());
  const Graph single = graphFromEdges(1, {});
  const auto r1 = buildBaswanaSen(single, {.k = 3, .seed = 1});
  EXPECT_TRUE(r1.edges.empty());
}

TEST(Engine, TwoVertexGraph) {
  const Graph g = graphFromEdges(2, {{0, 1, 3.0}});
  const auto r = buildBaswanaSen(g, {.k = 2, .seed = 1});
  // The only edge must survive (spanners preserve connectivity).
  EXPECT_EQ(r.edges.size(), 1u);
}

TEST(Engine, DisconnectedGraphIsHandled) {
  // Two disjoint cycles.
  GraphBuilder b(12);
  for (int i = 0; i < 6; ++i) b.addEdge(i, (i + 1) % 6, 1.0);
  for (int i = 0; i < 6; ++i) b.addEdge(6 + i, 6 + (i + 1) % 6, 1.0);
  const Graph g = b.build();
  TradeoffParams p;
  p.k = 3;
  p.t = 1;
  p.seed = 2;
  const auto r = buildTradeoffSpanner(g, p);
  const auto report = verifySpanner(g, r.edges, r.stretchBound);
  EXPECT_TRUE(report.spanning);
  EXPECT_EQ(report.violations, 0u);
}

}  // namespace
}  // namespace mpcspan
