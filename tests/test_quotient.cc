#include "graph/quotient.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace mpcspan {
namespace {

TEST(Quotient, ContractsClusters) {
  // Two clusters {0,1} and {2,3} with parallel crossing edges of weights
  // 5 and 2 -> one super-edge of weight 2.
  GraphBuilder b(4);
  b.addEdge(0, 1, 1.0);
  b.addEdge(2, 3, 1.0);
  b.addEdge(0, 2, 5.0);
  b.addEdge(1, 3, 2.0);
  const Graph g = b.build();
  const Quotient q = quotientGraph(g, {7, 7, 9, 9});
  EXPECT_EQ(q.numClasses, 2u);
  ASSERT_EQ(q.graph.numEdges(), 1u);
  EXPECT_DOUBLE_EQ(q.graph.edge(0).w, 2.0);
  // Representative points at the original weight-2 edge.
  ASSERT_EQ(q.representative.size(), 1u);
  EXPECT_DOUBLE_EQ(g.edge(q.representative[0]).w, 2.0);
}

TEST(Quotient, DropsUnlabeledVertices) {
  GraphBuilder b(3);
  b.addEdge(0, 1, 1.0);
  b.addEdge(1, 2, 1.0);
  const Graph g = b.build();
  const Quotient q = quotientGraph(g, {1, 2, kNoVertex});
  EXPECT_EQ(q.numClasses, 2u);
  EXPECT_EQ(q.graph.numEdges(), 1u);
  EXPECT_EQ(q.superOf[2], kNoVertex);
}

TEST(Quotient, SelfLoopsDisappear) {
  Rng rng(1);
  const Graph g = completeGraph(6, rng);
  const Quotient q = quotientGraph(g, {0, 0, 0, 0, 0, 0});
  EXPECT_EQ(q.numClasses, 1u);
  EXPECT_EQ(q.graph.numEdges(), 0u);
}

TEST(Quotient, IdentityClusteringPreservesGraph) {
  Rng rng(2);
  const Graph g = gnmRandom(40, 100, rng, {WeightModel::kUniform, 9.0});
  std::vector<VertexId> ids(g.numVertices());
  for (VertexId v = 0; v < g.numVertices(); ++v) ids[v] = v;
  const Quotient q = quotientGraph(g, ids);
  EXPECT_EQ(q.numClasses, g.numVertices());
  EXPECT_EQ(q.graph.numEdges(), g.numEdges());
}

}  // namespace
}  // namespace mpcspan
