// Regression pins: fixed-seed runs hashed edge-by-edge. These freeze the
// exact behaviour of every algorithm (sampling, tie-breaking, epoch
// schedules); any change to the engine's semantics — intended or not —
// shows up here first and must be acknowledged by updating the pins.
#include <gtest/gtest.h>

#include "cclique/spanner_cc.hpp"
#include "graph/generators.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/cluster_merging.hpp"
#include "spanner/sqrtk.hpp"
#include "spanner/tradeoff.hpp"
#include "spanner/unweighted_fast.hpp"
#include "util/rng.hpp"

namespace mpcspan {
namespace {

std::uint64_t edgesDigest(const std::vector<EdgeId>& edges) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (EdgeId id : edges) h = mix64(h ^ (id + 0x9e3779b97f4a7c15ULL));
  return h;
}

Graph pinGraph() {
  Rng rng(0xFEED);
  return gnmRandom(256, 1024, rng, {WeightModel::kUniform, 31.0}, true);
}

TEST(Regression, GeneratorIsPinned) {
  const Graph g = pinGraph();
  ASSERT_EQ(g.numVertices(), 256u);
  ASSERT_EQ(g.numEdges(), 1280u);  // 1024 + connected overlay ring
  // Digest of the edge structure itself.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const Edge& e : g.edges())
    h = mix64(h ^ ((std::uint64_t(e.u) << 32) | e.v));
  EXPECT_EQ(h, 0x68b8d59065e751aaULL);
}

TEST(Regression, AlgorithmsArePinned) {
  const Graph g = pinGraph();
  const std::uint64_t seed = 77;

  const auto bs = buildBaswanaSen(g, {.k = 4, .seed = seed});
  const auto cm = buildClusterMergingSpanner(g, {.k = 8, .seed = seed});
  const auto sq = buildSqrtKSpanner(g, {.k = 9, .seed = seed});
  TradeoffParams tp;
  tp.k = 8;
  tp.t = 2;
  tp.seed = seed;
  const auto to = buildTradeoffSpanner(g, tp);
  const auto cc = buildCcSpanner(g, {.k = 8, .t = 2, .seed = seed});

  // The digests below were recorded from the first verified-green build;
  // see file header for the update policy.
  EXPECT_EQ(edgesDigest(bs.edges), 0xd42790d718cb7b5fULL) << bs.edges.size();
  EXPECT_EQ(edgesDigest(cm.edges), 0xfb0e767a464be236ULL) << cm.edges.size();
  EXPECT_EQ(edgesDigest(sq.edges), 0x629684f3d2375574ULL) << sq.edges.size();
  EXPECT_EQ(edgesDigest(to.edges), 0x234a1d77d5f62729ULL) << to.edges.size();
  EXPECT_EQ(edgesDigest(cc.edges), 0xeb46b375475a1ed9ULL) << cc.edges.size();
}

TEST(Regression, UnweightedFastIsPinned) {
  Rng rng(0xBEEF);
  const Graph g = gnmRandom(256, 1024, rng, {}, true);
  const auto r = buildUnweightedFastSpanner(g, {.k = 3, .gamma = 0.5, .seed = 5});
  EXPECT_EQ(edgesDigest(r.spanner.edges), 0xb1501b183e1b0e77ULL)
      << r.spanner.edges.size();
}

}  // namespace
}  // namespace mpcspan
