#include "spanner/tradeoff.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/verify.hpp"

namespace mpcspan {
namespace {

TEST(Tradeoff, StretchExponentFormula) {
  // s = log(2t+1)/log(t+1): t=1 -> log2(3); t->inf -> 1.
  EXPECT_NEAR(tradeoffStretchExponent(1), std::log2(3.0), 1e-12);
  EXPECT_NEAR(tradeoffStretchExponent(2), std::log(5.0) / std::log(3.0), 1e-12);
  EXPECT_GT(tradeoffStretchExponent(1), tradeoffStretchExponent(2));
  EXPECT_GT(tradeoffStretchExponent(4), tradeoffStretchExponent(16));
  EXPECT_NEAR(tradeoffStretchExponent(1 << 20), 1.0, 0.05);
}

TEST(Tradeoff, TheoreticalStretchIsMonotoneInT) {
  for (std::uint32_t k : {16u, 64u}) {
    double prev = tradeoffTheoreticalStretch(k, 1);
    for (std::uint32_t t : {2u, 4u, 8u, 16u}) {
      const double cur = tradeoffTheoreticalStretch(k, t);
      EXPECT_LE(cur, prev + 1e-9) << "k=" << k << " t=" << t;
      prev = cur;
    }
  }
}

TEST(Tradeoff, IterationCountMatchesTheorem) {
  // Total iterations = t * ceil(log k / log(t+1)).
  Rng rng(1);
  const Graph g = gnmRandom(300, 1200, rng, {}, true);
  for (std::uint32_t k : {8u, 16u, 27u}) {
    for (std::uint32_t t : {1u, 2u, 3u, 5u}) {
      TradeoffParams p;
      p.k = k;
      p.t = t;
      p.seed = 1;
      const auto r = buildTradeoffSpanner(g, p);
      const auto l = static_cast<std::size_t>(std::ceil(
          std::log(static_cast<double>(k)) / std::log(static_cast<double>(t) + 1.0) -
          1e-9));
      EXPECT_EQ(r.iterations, t * std::max<std::size_t>(l, 1)) << "k=" << k << " t=" << t;
    }
  }
}

TEST(Tradeoff, DefaultTIsLogK) {
  Rng rng(2);
  const Graph g = gnmRandom(200, 800, rng, {}, true);
  TradeoffParams p;
  p.k = 16;
  p.t = 0;  // auto
  p.seed = 2;
  const auto r = buildTradeoffSpanner(g, p);
  EXPECT_EQ(r.t, 4u);  // ceil(log2 16)
}

class TradeoffAudit
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(TradeoffAudit, CertifiedStretchHoldsOnEveryEdge) {
  const auto [k, t] = GetParam();
  Rng rng(k * 131 + t);
  const Graph g = gnmRandom(350, 1800, rng, {WeightModel::kUniform, 30.0}, true);
  TradeoffParams p;
  p.k = k;
  p.t = t;
  p.seed = 17;
  const auto r = buildTradeoffSpanner(g, p);
  const auto report = verifySpanner(g, r.edges, r.stretchBound);
  EXPECT_TRUE(report.spanning);
  EXPECT_EQ(report.violations, 0u)
      << "k=" << k << " t=" << t << " max=" << report.maxEdgeStretch
      << " bound=" << r.stretchBound;
  // Pairwise stretch can never exceed the per-edge bound.
  EXPECT_LE(report.maxPairStretch, r.stretchBound + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    KTGrid, TradeoffAudit,
    ::testing::Combine(::testing::Values(2u, 4u, 8u, 16u),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Tradeoff, LargeTDegeneratesTowardBaswanaSen) {
  // With t >= k-1 the schedule is one epoch at p = n^{-1/k}: the same
  // cluster process as Baswana-Sen (plus a final contraction).
  Rng rng(3);
  const Graph g = gnmRandom(300, 1500, rng, {}, true);
  TradeoffParams p;
  p.k = 8;
  p.t = 8;
  p.seed = 23;
  const auto r = buildTradeoffSpanner(g, p);
  EXPECT_EQ(r.epochs, 1u);
  EXPECT_EQ(r.iterations, 8u);
}

TEST(Tradeoff, SupernodeDecayFollowsLemma512) {
  // E[supernodes at epoch i] = n^{1-((t+1)^{i-1}-1)/k}; check within a
  // generous multiplicative envelope on a fixed seed.
  Rng rng(4);
  const std::size_t n = 4000;
  const Graph g = gnmRandom(n, 20000, rng, {}, true);
  TradeoffParams p;
  p.k = 8;
  p.t = 2;
  p.seed = 31;
  const auto r = buildTradeoffSpanner(g, p);
  ASSERT_GE(r.supernodesPerEpoch.size(), 2u);
  for (std::size_t i = 1; i < r.supernodesPerEpoch.size(); ++i) {
    const double expected =
        std::pow(static_cast<double>(n),
                 1.0 - (std::pow(3.0, static_cast<double>(i)) - 1.0) / 8.0);
    // Supernodes can only be fewer than the sampling survivors in
    // expectation (exits remove more); allow [0, 4x] envelope.
    EXPECT_LE(static_cast<double>(r.supernodesPerEpoch[i]), 4.0 * expected + 50.0)
        << "epoch " << i;
  }
}

TEST(Tradeoff, GridAndBAFamiliesAudit) {
  Rng rng(5);
  for (Family f : {Family::kGrid, Family::kBarabasiAlbert}) {
    const Graph g = makeFamily(f, 400, 6.0, rng, {WeightModel::kUniform, 10.0});
    TradeoffParams p;
    p.k = 8;
    p.t = 2;
    p.seed = 41;
    const auto r = buildTradeoffSpanner(g, p);
    const auto report = verifySpanner(g, r.edges, r.stretchBound,
                                      {.maxEdgeChecks = 1200, .pairSources = 4});
    EXPECT_TRUE(report.spanning) << familyName(f);
    EXPECT_EQ(report.violations, 0u) << familyName(f);
  }
}

}  // namespace
}  // namespace mpcspan
