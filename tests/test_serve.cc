// The serving daemon, driven in-process: protocol round-trips against a
// directly assembled QueryPlane (bit-identical when not degraded),
// deadline-budgeted degradation staying inside the answering tier's
// certified stretch, hot-reload atomicity (a corrupt artifact is rejected
// and the old snapshot keeps serving), overload shedding at the accept
// watermark, malformed/oversized frames answered with a typed error and a
// close, and fd hygiene across a thousand connect/query/close cycles.
// Runs under the full sanitizer matrix in CI.
#include <gtest/gtest.h>

#include <dirent.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "graph/distance.hpp"
#include "graph/generators.hpp"
#include "query/audit.hpp"
#include "query/build.hpp"
#include "serve/client.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/deadline.hpp"

namespace mpcspan {
namespace {

using serve::ClientOptions;
using serve::ServeClient;
using serve::Server;
using serve::ServerOptions;

std::string buildTestArtifact(const std::string& name, std::size_t n,
                              std::uint64_t seed) {
  const std::string path = ::testing::TempDir() + "/serve_" + name + ".mpqa";
  Rng rng(seed);
  const Graph g = gnmRandom(n, 4 * n, rng, {WeightModel::kUniform, 50.0},
                            /*connected=*/true);
  query::BuildPlan plan;
  plan.algo = "tradeoff";
  plan.k = 4;
  plan.sketchK = 2;
  plan.seed = seed;
  const query::QueryArtifact a = query::buildArtifact(g, plan);
  query::saveArtifactFile(a, path);
  return path;
}

const std::string& artifactA() {
  static const std::string p = buildTestArtifact("a", 300, 1);
  return p;
}

const std::string& artifactB() {
  static const std::string p = buildTestArtifact("b", 200, 7);
  return p;
}

ServerOptions testServerOptions(const std::string& artifact) {
  ServerOptions o;
  o.artifactPath = artifact;
  o.port = 0;
  o.sessionThreads = 4;
  o.pollSliceMs = 50;   // snappy stop under test
  o.frameTimeoutMs = 2000;
  o.writeTimeoutMs = 2000;
  return o;
}

ClientOptions clientFor(const Server& s, int maxRetries = 3) {
  ClientOptions c;
  c.port = s.port();
  c.maxRetries = maxRetries;
  c.connectTimeoutMs = 2000;
  c.requestTimeoutMs = 4000;
  c.backoffBaseMs = 5;
  c.backoffMaxMs = 50;
  return c;
}

std::size_t openFdCount() {
  std::size_t count = 0;
  DIR* d = ::opendir("/proc/self/fd");
  if (d == nullptr) return 0;
  while (::readdir(d) != nullptr) ++count;
  ::closedir(d);
  return count;
}

// --- The generalized deadline budget -------------------------------------

TEST(DeadlineBudget, UnboundedNeverExpires) {
  const util::DeadlineBudget b;
  EXPECT_FALSE(b.bounded());
  EXPECT_FALSE(b.expired());
  EXPECT_EQ(b.remainingMs(), -1);
  EXPECT_EQ(b.remainingNanos(), -1);
}

TEST(DeadlineBudget, ZeroIsBoundedAndExpired) {
  const util::DeadlineBudget b(0);
  EXPECT_TRUE(b.bounded());
  EXPECT_TRUE(b.expired());
  EXPECT_EQ(b.remainingMs(), 0);
  EXPECT_EQ(b.remainingNanos(), 0);
}

TEST(DeadlineBudget, BoundedCountsDown) {
  const util::DeadlineBudget b(60000);
  EXPECT_TRUE(b.bounded());
  EXPECT_FALSE(b.expired());
  EXPECT_GT(b.remainingNanos(), 0);
  EXPECT_LE(b.remainingMs(), 60000);
}

// --- Accuracy-first budgeted queries on the oracle itself -----------------

TEST(QueryBudgeted, UnboundedBudgetAnswersFromStrongestTier) {
  const query::QueryArtifact a = query::loadArtifactFile(artifactA());
  const query::QueryPlane plane = query::makeQueryPlane(a);
  const int exactTier = static_cast<int>(plane.tiered->numTiers()) - 1;
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const auto u = static_cast<VertexId>(rng.next(a.graph.numVertices()));
    const auto v = static_cast<VertexId>(rng.next(a.graph.numVertices()));
    const query::BudgetedAnswer ans =
        plane.tiered->queryBudgeted(u, v, util::DeadlineBudget());
    EXPECT_EQ(ans.tier, exactTier);
    EXPECT_FALSE(ans.degraded);
    EXPECT_DOUBLE_EQ(ans.stretch, 1.0);
    EXPECT_EQ(ans.dist, dijkstraPair(a.graph, u, v));
  }
}

TEST(QueryBudgeted, ExpiredBudgetDegradesToFloorWithinStretch) {
  const query::QueryArtifact a = query::loadArtifactFile(artifactA());
  const query::QueryPlane plane = query::makeQueryPlane(a);
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    const auto u = static_cast<VertexId>(rng.next(a.graph.numVertices()));
    const auto v = static_cast<VertexId>(rng.next(a.graph.numVertices()));
    const query::BudgetedAnswer ans =
        plane.tiered->queryBudgeted(u, v, util::DeadlineBudget(0));
    EXPECT_EQ(ans.tier, 0) << "expired budget must answer from the floor";
    if (u == v) continue;
    EXPECT_TRUE(ans.degraded);
    const Weight exact = dijkstraPair(a.graph, u, v);
    EXPECT_GE(ans.dist, exact - 1e-9);
    EXPECT_LE(ans.dist, exact * ans.stretch + 1e-9)
        << "degraded answer left its certified stretch envelope";
  }
}

TEST(QueryBudgeted, SnapshotCountsQueriesAndDegradations) {
  const query::QueryArtifact a = query::loadArtifactFile(artifactA());
  const query::QueryPlane plane = query::makeQueryPlane(a);
  plane.tiered->resetStats();
  (void)plane.tiered->query(1, 2);
  (void)plane.tiered->queryBudgeted(3, 4, util::DeadlineBudget());
  (void)plane.tiered->queryBudgeted(5, 6, util::DeadlineBudget(0));
  const query::OracleSnapshot snap = plane.tiered->snapshot();
  EXPECT_EQ(snap.queries, 3u);
  EXPECT_EQ(snap.degraded, 1u);
  EXPECT_EQ(snap.tiers.size(), plane.tiered->numTiers());
  plane.tiered->resetStats();
  const query::OracleSnapshot clean = plane.tiered->snapshot();
  EXPECT_EQ(clean.queries, 0u);
  EXPECT_EQ(clean.degraded, 0u);
  for (const query::TierStats& t : clean.tiers) EXPECT_EQ(t.attempts, 0u);
}

// --- The envelope audit ----------------------------------------------------

TEST(AuditEnvelope, CleanAnswersPassAndViolationsAreNamed) {
  const query::QueryArtifact a = query::loadArtifactFile(artifactA());
  const query::QueryPlane plane = query::makeQueryPlane(a);
  Rng rng(17);
  std::vector<query::QueryPair> pairs(64);
  for (auto& p : pairs)
    p = {static_cast<VertexId>(rng.next(a.graph.numVertices())),
         static_cast<VertexId>(rng.next(a.graph.numVertices()))};
  std::vector<Weight> answers(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i)
    answers[i] = plane.tiered->query(pairs[i].first, pairs[i].second);

  const query::AuditReport good =
      query::auditEnvelope(a.graph, pairs, answers, a.composedStretch);
  EXPECT_TRUE(good.ok());
  EXPECT_GT(good.audited, 0u);
  EXPECT_GE(good.maxRatio, 1.0 - 1e-9);

  // Corrupt one answer below the exact distance: the report must name the
  // offending pair with both values, exactly what --audit prints.
  std::size_t victim = pairs.size();
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (pairs[i].first != pairs[i].second && answers[i] > 1.0 &&
        answers[i] != kInfDist) {
      victim = i;
      break;
    }
  }
  ASSERT_LT(victim, pairs.size());
  const Weight truth = answers[victim];
  answers[victim] = truth * 0.5;
  const query::AuditReport bad =
      query::auditEnvelope(a.graph, pairs, answers, a.composedStretch);
  ASSERT_FALSE(bad.ok());
  bool found = false;
  for (const query::AuditViolation& v : bad.violations) {
    if (v.u == pairs[victim].first && v.v == pairs[victim].second) {
      found = true;
      EXPECT_EQ(v.got, truth * 0.5);
      EXPECT_GT(v.exact, 0.0);
    }
  }
  EXPECT_TRUE(found) << "violation report must carry the offending pair";
}

// --- Client backoff --------------------------------------------------------

TEST(ClientBackoff, BoundedExponentialWithJitter) {
  ClientOptions o;
  o.backoffBaseMs = 20;
  o.backoffMaxMs = 200;
  Rng rng(5);
  int prevCap = 0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int cap = std::min<long long>(200, 20ll << attempt);
    for (int trial = 0; trial < 32; ++trial) {
      const int d = ServeClient::backoffDelayMs(attempt, o, rng);
      EXPECT_GE(d, cap / 2 - 1) << "jitter floor is half the step";
      EXPECT_LE(d, cap) << "delay must respect the cap";
    }
    EXPECT_GE(cap, prevCap) << "steps grow until the cap";
    prevCap = cap;
  }
}

// --- Protocol round-trip against the in-process daemon --------------------

TEST(ServeRoundTrip, WireAnswersBitIdenticalToLocalPlane) {
  Server server(testServerOptions(artifactA()));
  server.start();
  const query::QueryArtifact a = query::loadArtifactFile(artifactA());
  const query::QueryPlane local = query::makeQueryPlane(a);

  ServeClient client(clientFor(server));
  const serve::HelloInfo info = client.serverInfo();
  EXPECT_EQ(info.numVertices, a.graph.numVertices());
  EXPECT_DOUBLE_EQ(info.composedStretch, a.composedStretch);
  EXPECT_EQ(info.snapshotVersion, 1u);

  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    const auto u = static_cast<VertexId>(rng.next(a.graph.numVertices()));
    const auto v = static_cast<VertexId>(rng.next(a.graph.numVertices()));
    const serve::WireAnswer remote = client.query(u, v);
    const query::BudgetedAnswer mine =
        local.tiered->queryBudgeted(u, v, util::DeadlineBudget());
    EXPECT_FALSE(remote.degraded);
    EXPECT_EQ(remote.dist, mine.dist)
        << "undegraded wire answers must be bit-identical to the local plane";
    EXPECT_EQ(remote.tier, mine.tier);
  }
  server.stop();
}

TEST(ServeRoundTrip, ZeroDeadlineDegradesWithinCertifiedStretch) {
  Server server(testServerOptions(artifactA()));
  server.start();
  const query::QueryArtifact a = query::loadArtifactFile(artifactA());

  ServeClient client(clientFor(server));
  Rng rng(29);
  std::size_t degraded = 0;
  for (int i = 0; i < 60; ++i) {
    auto u = static_cast<VertexId>(rng.next(a.graph.numVertices()));
    auto v = static_cast<VertexId>(rng.next(a.graph.numVertices()));
    if (u == v) v = (v + 1) % static_cast<VertexId>(a.graph.numVertices());
    const serve::WireAnswer ans = client.query(u, v, /*deadlineMs=*/0);
    EXPECT_EQ(ans.tier, 0);
    EXPECT_TRUE(ans.degraded);
    if (ans.degraded) ++degraded;
    const Weight exact = dijkstraPair(a.graph, u, v);
    EXPECT_GE(ans.dist, exact - 1e-9);
    EXPECT_LE(ans.dist, exact * ans.stretch + 1e-9);
  }
  EXPECT_EQ(degraded, 60u);
  const serve::ServeStats s = client.stats();
  EXPECT_GE(s.degraded, 60u);
  server.stop();
}

TEST(ServeRoundTrip, PingAndStatsOverWire) {
  Server server(testServerOptions(artifactA()));
  server.start();
  ServeClient client(clientFor(server));
  client.ping();
  (void)client.query(1, 2);
  const serve::ServeStats s = client.stats();
  EXPECT_EQ(s.snapshotVersion, 1u);
  EXPECT_EQ(s.numVertices, 300u);
  EXPECT_GE(s.queries, 1u);
  EXPECT_GE(s.accepted, 1u);
  EXPECT_FALSE(s.tiers.empty());
  EXPECT_EQ(s.malformedFrames, 0u);
  server.stop();
}

TEST(ServeRoundTrip, OutOfRangeVertexErrorsButKeepsSession) {
  Server server(testServerOptions(artifactA()));
  server.start();
  ServeClient client(clientFor(server, /*maxRetries=*/0));
  EXPECT_THROW((void)client.query(100000, 1), serve::ServeRemoteError);
  // Same connection still serves: remote errors must not poison it.
  const serve::WireAnswer ans = client.query(1, 2);
  EXPECT_GE(ans.dist, 0.0);
  server.stop();
}

// --- Hot snapshot reload ---------------------------------------------------

TEST(ServeReload, CorruptArtifactRejectedOldSnapshotKeepsServing) {
  Server server(testServerOptions(artifactA()));
  server.start();
  ServeClient client(clientFor(server));
  const serve::WireAnswer before = client.query(1, 7);
  EXPECT_EQ(before.snapshotVersion, 1u);

  // A truncated copy of a valid artifact: loads must fail cleanly.
  const std::string corruptPath = ::testing::TempDir() + "/serve_corrupt.mpqa";
  {
    std::ifstream in(artifactA(), std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 64u);
    bytes.resize(bytes.size() / 2);
    bytes[16] ^= 0x5a;  // and a bit-flip for good measure
    std::ofstream out(corruptPath, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW((void)client.reload(corruptPath), serve::ServeRemoteError);

  const serve::ServeStats s = client.stats();
  EXPECT_EQ(s.reloadsFailed, 1u);
  EXPECT_EQ(s.reloadsOk, 0u);
  EXPECT_EQ(s.snapshotVersion, 1u) << "failed reload must not swap";
  const serve::WireAnswer after = client.query(1, 7);
  EXPECT_EQ(after.dist, before.dist);
  EXPECT_EQ(after.snapshotVersion, 1u);
  server.stop();
}

TEST(ServeReload, GoodArtifactSwapsAtomically) {
  Server server(testServerOptions(artifactA()));
  server.start();
  ServeClient client(clientFor(server));
  EXPECT_EQ(client.stats().numVertices, 300u);
  const std::uint64_t v2 = client.reload(artifactB());
  EXPECT_EQ(v2, 2u);
  const serve::ServeStats s = client.stats();
  EXPECT_EQ(s.snapshotVersion, 2u);
  EXPECT_EQ(s.numVertices, 200u) << "new snapshot must serve the new graph";
  EXPECT_EQ(s.reloadsOk, 1u);
  // Answers now come from artifact B's plane.
  const query::QueryArtifact b = query::loadArtifactFile(artifactB());
  const query::QueryPlane bPlane = query::makeQueryPlane(b);
  const serve::WireAnswer ans = client.query(3, 9);
  EXPECT_EQ(ans.snapshotVersion, 2u);
  EXPECT_EQ(ans.dist,
            bPlane.tiered->queryBudgeted(3, 9, util::DeadlineBudget()).dist);
  server.stop();
}

// --- Overload shedding -----------------------------------------------------

TEST(ServeShed, PastWatermarkConnectionsGetShedReply) {
  ServerOptions opts = testServerOptions(artifactA());
  opts.sessionThreads = 1;
  opts.queueCapacity = 1;
  Server server(opts);
  server.start();

  // A occupies the only session thread; B fills the queue; C must shed.
  ServeClient a(clientFor(server));
  a.ping();
  serve::WireFd b = serve::dialTcp("127.0.0.1", server.port(), 2000);
  // Wait until the acceptor has actually queued B (A can still be served —
  // it was popped off the queue before B arrived).
  for (int i = 0; i < 100 && a.stats().accepted < 2; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_GE(a.stats().accepted, 2u);

  ServeClient c(clientFor(server, /*maxRetries=*/0));
  EXPECT_THROW(c.ping(), serve::ServeShedError);
  const serve::ServeStats s = a.stats();
  EXPECT_GE(s.shedQueueFull, 1u);
  b.reset();
  server.stop();
}

// --- Malformed input -------------------------------------------------------

TEST(ServeMalformed, OversizedFrameGetsErrorReplyAndClose) {
  Server server(testServerOptions(artifactA()));
  server.start();
  serve::WireFd raw = serve::dialTcp("127.0.0.1", server.port(), 2000);
  const serve::IoPacing pacing{};
  // Claim a 2 MiB frame — past the cap, body never sent.
  const std::uint64_t lie = 2ull << 20;
  ASSERT_EQ(serve::writeBytes(raw.fd(), &lie, sizeof(lie),
                              util::DeadlineBudget(2000), pacing),
            serve::IoStatus::kOk);
  std::vector<std::uint8_t> reply;
  ASSERT_EQ(serve::readFrame(raw.fd(), reply, serve::kMaxServeFrameBytes,
                             util::DeadlineBudget(4000), 2000, pacing),
            serve::IoStatus::kOk);
  EXPECT_EQ(reply.at(0), serve::kReError);
  // ... and the server closes: the next read is EOF, not a hang.
  std::uint8_t byte = 0;
  EXPECT_EQ(serve::readBytes(raw.fd(), &byte, 1, util::DeadlineBudget(4000),
                             pacing),
            serve::IoStatus::kEof);

  ServeClient probe(clientFor(server));
  EXPECT_GE(probe.stats().malformedFrames, 1u);
  server.stop();
}

TEST(ServeMalformed, GarbageFrameGetsErrorReplyAndClose) {
  Server server(testServerOptions(artifactA()));
  server.start();
  serve::WireFd raw = serve::dialTcp("127.0.0.1", server.port(), 2000);
  const serve::IoPacing pacing{};
  // A plausible length with garbage bytes: parses to a hello whose body is
  // truncated, which the codec must reject without crashing.
  std::vector<std::uint8_t> junk = {serve::kOpHello, 0xde, 0xad};
  ASSERT_EQ(serve::writeFrame(raw.fd(), junk.data(), junk.size(), 2000,
                              pacing),
            serve::IoStatus::kOk);
  std::vector<std::uint8_t> reply;
  ASSERT_EQ(serve::readFrame(raw.fd(), reply, serve::kMaxServeFrameBytes,
                             util::DeadlineBudget(4000), 2000, pacing),
            serve::IoStatus::kOk);
  EXPECT_EQ(reply.at(0), serve::kReError);
  std::uint8_t byte = 0;
  EXPECT_EQ(serve::readBytes(raw.fd(), &byte, 1, util::DeadlineBudget(4000),
                             pacing),
            serve::IoStatus::kEof);

  // The daemon is unharmed: a fresh client gets real answers.
  ServeClient probe(clientFor(server));
  EXPECT_GE(probe.stats().malformedFrames, 1u);
  (void)probe.query(1, 2);
  server.stop();
}

TEST(ServeMalformed, WrongMagicHelloRejected) {
  Server server(testServerOptions(artifactA()));
  server.start();
  serve::WireFd raw = serve::dialTcp("127.0.0.1", server.port(), 2000);
  const serve::IoPacing pacing{};
  serve::WireWriter w;
  w.u8(serve::kOpHello);
  w.u64(0x1badd00dull);  // not kServeMagic
  w.u8(serve::kServeVersion);
  ASSERT_EQ(serve::writeFrame(raw.fd(), w.data(), w.size(), 2000, pacing),
            serve::IoStatus::kOk);
  std::vector<std::uint8_t> reply;
  ASSERT_EQ(serve::readFrame(raw.fd(), reply, serve::kMaxServeFrameBytes,
                             util::DeadlineBudget(4000), 2000, pacing),
            serve::IoStatus::kOk);
  EXPECT_EQ(reply.at(0), serve::kReError);
  server.stop();
}

// --- Fd hygiene and shutdown ----------------------------------------------

TEST(ServeLifecycle, NoFdLeakAcrossManyConnectQueryCloseCycles) {
  Server server(testServerOptions(artifactA()));
  server.start();
  {
    // Prime: first connection settles lazily created fds (epoll pools etc).
    ServeClient warm(clientFor(server));
    (void)warm.query(1, 2);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const std::size_t before = openFdCount();
  for (int i = 0; i < 1000; ++i) {
    ServeClient c(clientFor(server));
    (void)c.query(static_cast<VertexId>(i % 300),
                  static_cast<VertexId>((i * 7) % 300));
    c.close();
  }
  // Let the session threads notice the EOFs and drop their ends.
  for (int spin = 0; spin < 100; ++spin) {
    if (openFdCount() <= before + 4) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const std::size_t after = openFdCount();
  EXPECT_LE(after, before + 4)
      << "fd count grew across cycles: " << before << " -> " << after;
  server.stop();
}

TEST(ServeLifecycle, StopJoinsWithIdleClientConnected) {
  Server server(testServerOptions(artifactA()));
  server.start();
  ServeClient idle(clientFor(server));
  idle.ping();  // session thread is now parked in the idle read
  server.stop();  // must not hang on the quiet connection
  SUCCEED();
}

TEST(ServeLifecycle, SignalFdTriggersStop) {
  Server server(testServerOptions(artifactA()));
  server.start();
  const char t = 'T';
  ASSERT_EQ(::write(server.signalFd(), &t, 1), 1);
  server.waitUntilStopRequested();
  server.stop();
  SUCCEED();
}

}  // namespace
}  // namespace mpcspan
