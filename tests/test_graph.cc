#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"

namespace mpcspan {
namespace {

TEST(GraphBuilder, EmptyGraph) {
  const Graph g = GraphBuilder(0).build();
  EXPECT_EQ(g.numVertices(), 0u);
  EXPECT_EQ(g.numEdges(), 0u);
}

TEST(GraphBuilder, SingleEdgeNormalizesOrientation) {
  GraphBuilder b(3);
  b.addEdge(2, 1, 5.0);
  const Graph g = b.build();
  ASSERT_EQ(g.numEdges(), 1u);
  EXPECT_EQ(g.edge(0).u, 1u);
  EXPECT_EQ(g.edge(0).v, 2u);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 5.0);
}

TEST(GraphBuilder, DropsSelfLoops) {
  GraphBuilder b(2);
  b.addEdge(1, 1, 2.0);
  b.addEdge(0, 1, 3.0);
  EXPECT_EQ(b.build().numEdges(), 1u);
}

TEST(GraphBuilder, ParallelEdgesKeepMinimumWeight) {
  GraphBuilder b(2);
  b.addEdge(0, 1, 7.0);
  b.addEdge(1, 0, 2.0);
  b.addEdge(0, 1, 9.0);
  const Graph g = b.build();
  ASSERT_EQ(g.numEdges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 2.0);
}

TEST(GraphBuilder, RejectsBadInput) {
  GraphBuilder b(2);
  EXPECT_THROW(b.addEdge(0, 5), std::out_of_range);
  EXPECT_THROW(b.addEdge(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(b.addEdge(0, 1, -2.0), std::invalid_argument);
  EXPECT_THROW(b.addEdge(0, 1, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(Graph, AdjacencyIsConsistentWithEdges) {
  GraphBuilder b(4);
  b.addEdge(0, 1, 1.0);
  b.addEdge(0, 2, 2.0);
  b.addEdge(2, 3, 3.0);
  const Graph g = b.build();
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(3), 1u);
  std::size_t halfEdges = 0;
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    for (const Incidence& inc : g.neighbors(v)) {
      const Edge& e = g.edge(inc.edge);
      EXPECT_TRUE(e.u == v || e.v == v);
      EXPECT_EQ(g.opposite(inc.edge, v), inc.to);
      ++halfEdges;
    }
  }
  EXPECT_EQ(halfEdges, 2 * g.numEdges());
}

TEST(Graph, UnweightedFlag) {
  GraphBuilder b(3);
  b.addEdge(0, 1);
  b.addEdge(1, 2);
  EXPECT_TRUE(b.build().isUnweighted());
  b.addEdge(0, 2, 2.5);
  EXPECT_FALSE(b.build().isUnweighted());
}

TEST(Graph, TotalAndMaxWeight) {
  GraphBuilder b(3);
  b.addEdge(0, 1, 1.5);
  b.addEdge(1, 2, 2.5);
  const Graph g = b.build();
  EXPECT_DOUBLE_EQ(g.totalWeight(), 4.0);
  EXPECT_DOUBLE_EQ(g.maxWeight(), 2.5);
  EXPECT_DOUBLE_EQ(Graph{}.maxWeight(), 0.0);
}

TEST(Graph, GraphFromEdgesHelper) {
  const Graph g = graphFromEdges(3, {{0, 1, 1.0}, {1, 2, 2.0}});
  EXPECT_EQ(g.numVertices(), 3u);
  EXPECT_EQ(g.numEdges(), 2u);
}

TEST(Graph, EdgesSortedByEndpoints) {
  GraphBuilder b(4);
  b.addEdge(2, 3);
  b.addEdge(0, 1);
  b.addEdge(0, 3);
  const Graph g = b.build();
  for (EdgeId id = 1; id < g.numEdges(); ++id) {
    const Edge& prev = g.edge(id - 1);
    const Edge& cur = g.edge(id);
    EXPECT_TRUE(prev.u < cur.u || (prev.u == cur.u && prev.v < cur.v));
  }
}

}  // namespace
}  // namespace mpcspan
