#include "cclique/clique.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cclique/apsp_cc.hpp"
#include "cclique/spanner_cc.hpp"
#include "graph/distance.hpp"
#include "graph/generators.hpp"
#include "spanner/verify.hpp"

namespace mpcspan {
namespace {

TEST(CongestedClique, DirectRoundDeliversAndCounts) {
  CongestedClique cc(4);
  const auto inbox = cc.directRound({{0, 1, {42}}, {2, 1, {43}}, {1, 0, {44}}});
  EXPECT_EQ(cc.rounds(), 1u);
  ASSERT_EQ(inbox[1].size(), 2u);
  EXPECT_EQ(inbox[1][0].second, 42u);
  EXPECT_EQ(inbox[0][0].first, 1u);
}

TEST(CongestedClique, RejectsDuplicatePairMessage) {
  CongestedClique cc(3);
  EXPECT_THROW(cc.directRound({{0, 1, {1}}, {0, 1, {2}}}), CapacityError);
}

TEST(CongestedClique, RejectsEmptyPayloadAtTheApiEdge) {
  // Regression: a zero-word Msg used to reach d.payload.front() unchecked.
  // It must be rejected up front, like an out-of-range node id, before any
  // engine round runs.
  CongestedClique cc(4);
  EXPECT_THROW(cc.directRound({{0, 1, {}}}), std::invalid_argument);
  EXPECT_THROW(cc.directRound({{0, 1, {7}}, {2, 3, {}}}), std::invalid_argument);
  EXPECT_EQ(cc.rounds(), 0u);
  // Oversized payloads stay a model violation (one word per pair).
  EXPECT_THROW(cc.directRound({{0, 1, {7, 8}}}), CapacityError);
}

TEST(CongestedClique, RejectsOutOfRangeNodes) {
  CongestedClique cc(3);
  EXPECT_THROW(cc.directRound({{0, 9, {1}}}), std::invalid_argument);
  EXPECT_THROW(CongestedClique(0), std::invalid_argument);
}

TEST(CongestedClique, LenzenRouteValidatesAndCharges) {
  CongestedClique cc(8);
  std::vector<std::size_t> send(8, 5), recv(8, 5);
  cc.lenzenRoute(send, recv);
  EXPECT_EQ(cc.rounds(), 2u);
  send[0] = 9;  // > n
  EXPECT_THROW(cc.lenzenRoute(send, recv), CapacityError);
}

TEST(CongestedClique, CollectToAllRoundFormula) {
  CongestedClique cc(11);
  // 100 words at 10 words/round -> 10 rounds + 1 spread round.
  EXPECT_EQ(cc.collectToAll(100), 11u);
  CongestedClique cc2(101);
  EXPECT_EQ(cc2.collectToAll(100), 2u);
}

TEST(RepetitionPolicy, AcceptsTypicalDrawQuickly) {
  Rng rng(1);
  const Graph g = gnmRandom(500, 2500, rng, {}, true);
  const auto r = buildCcSpanner(g, {.k = 8, .t = 2, .seed = 1});
  // Most iterations should accept an early draw; total draws stay far
  // below iterations * R.
  EXPECT_GT(r.repetition.totalDraws, 0l);
  const long maxDraws =
      static_cast<long>(r.iterations) *
      static_cast<long>(std::ceil(3.0 * std::log2(500.0)));
  EXPECT_LE(r.repetition.totalDraws, maxDraws);
}

TEST(CcSpanner, SizeBoundHoldsAcrossSeeds) {
  // Theorem 8.1's point: size O(n^{1+1/k}(t+log k)) w.h.p., not only in
  // expectation. Check a batch of seeds against a fixed envelope.
  Rng rng(2);
  const std::size_t n = 600;
  const Graph g = gnmRandom(n, 6000, rng, {WeightModel::kUniform, 10.0}, true);
  const std::uint32_t k = 6, t = 2;
  const double envelope =
      8.0 * std::pow(static_cast<double>(n), 1.0 + 1.0 / k) *
      (t + std::log2(static_cast<double>(k)));
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto r = buildCcSpanner(g, {.k = k, .t = t, .seed = seed});
    EXPECT_LT(static_cast<double>(r.edges.size()), envelope) << "seed " << seed;
    EXPECT_LE(r.edges.size(), g.numEdges());
  }
}

TEST(CcSpanner, StretchAuditAndCliqueRounds) {
  Rng rng(3);
  const Graph g = gnmRandom(400, 2000, rng, {WeightModel::kUniform, 5.0}, true);
  const auto r = buildCcSpanner(g, {.k = 8, .t = 2, .seed = 5});
  const auto report = verifySpanner(g, r.edges, r.stretchBound,
                                    {.maxEdgeChecks = 1000, .pairSources = 3});
  EXPECT_TRUE(report.spanning);
  EXPECT_EQ(report.violations, 0u);
  // Clique rounds = supersteps + 2 per iteration (Theorem 8.1 overhead).
  EXPECT_EQ(r.cost.cliqueRounds(),
            r.cost.nearLinearRounds() + 2 * static_cast<long>(r.iterations));
}

TEST(CcApsp, AutoParametersFollowN) {
  Rng rng(4);
  const Graph g = gnmRandom(512, 2048, rng, {WeightModel::kUniform, 20.0}, true);
  const auto r = runCcApsp(g, {.seed = 1});
  EXPECT_EQ(r.kUsed, 9u);  // ceil(log2 512)
  EXPECT_GE(r.tUsed, 1u);
  EXPECT_LE(r.tUsed, 4u);  // ~ log log n
  EXPECT_EQ(r.totalRounds, r.spannerRounds + r.collectRounds);
  EXPECT_GT(r.collectRounds, 0l);
}

TEST(CcApsp, ApproximationRespectsBound) {
  Rng rng(5);
  const Graph g = gnmRandom(300, 1800, rng, {WeightModel::kUniform, 10.0}, true);
  const auto r = runCcApsp(g, {.seed = 2});
  const auto approx = r.distancesFrom(g, 0);
  const auto exact = dijkstra(g, 0);
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    if (exact[v] == kInfDist) {
      EXPECT_EQ(approx[v], kInfDist);
      continue;
    }
    EXPECT_GE(approx[v] + 1e-9, exact[v]);  // spanner distances upper-bound
    if (exact[v] > 0) {
      EXPECT_LE(approx[v] / exact[v], r.approxBound + 1e-6);
    }
  }
}

TEST(CcApsp, CollectRoundsMatchSpannerSize) {
  Rng rng(6);
  const Graph g = gnmRandom(256, 1024, rng, {WeightModel::kUniform, 3.0}, true);
  const auto r = runCcApsp(g, {.seed = 3});
  const long expected =
      1 + static_cast<long>((2 * r.spanner.edges.size() + 254) / 255);
  EXPECT_EQ(r.collectRounds, expected);
}

}  // namespace
}  // namespace mpcspan
