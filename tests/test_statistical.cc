// Statistical properties that hold across seeds: the expectation-level size
// analyses (Theorem 4.13 / Lemma 5.14), the sampling concentration the
// Congested Clique machinery relies on, and failure injection against the
// simulator's capacity enforcement.
#include <gtest/gtest.h>

#include <cmath>

#include "cclique/spanner_cc.hpp"
#include "graph/generators.hpp"
#include "mpc/dist_spanner.hpp"
#include "mpc/primitives.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/tradeoff.hpp"
#include "util/stats.hpp"

namespace mpcspan {
namespace {

TEST(Statistical, MeanSpannerSizeTracksTheorem413) {
  // E[|E_S|] = O(n^{1+1/k} log k) for the t=1 algorithm; average over seeds
  // and compare against the bound with a modest constant.
  Rng rng(1);
  const std::size_t n = 1200;
  const Graph g = gnmRandom(n, 14400, rng, {WeightModel::kUniform, 10.0}, true);
  const std::uint32_t k = 8;
  std::vector<double> sizes;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    TradeoffParams p;
    p.k = k;
    p.t = 1;
    p.seed = seed;
    sizes.push_back(static_cast<double>(buildTradeoffSpanner(g, p).edges.size()));
  }
  const Summary s = summarize(sizes);
  const double bound = 4.0 * std::pow(double(n), 1.0 + 1.0 / k) *
                       (std::log2(double(k)) + 1.0);
  EXPECT_LT(s.mean, bound);
  // Concentration: no seed strays far from the mean.
  EXPECT_LT(s.max / s.min, 1.6);
}

TEST(Statistical, BaswanaSenSizeAcrossSeeds) {
  Rng rng(2);
  const std::size_t n = 1000;
  const Graph g = gnmRandom(n, 12000, rng, {}, true);
  std::vector<double> sizes;
  for (std::uint64_t seed = 1; seed <= 10; ++seed)
    sizes.push_back(
        static_cast<double>(buildBaswanaSen(g, {.k = 4, .seed = seed}).edges.size()));
  const Summary s = summarize(sizes);
  EXPECT_LT(s.mean, 4.0 * 4.0 * std::pow(double(n), 1.25));
  EXPECT_GT(s.min, double(n) - 1);  // at least a spanning structure
}

TEST(Statistical, CcRepetitionKeepsSizeSpreadTight) {
  // Theorem 8.1's w.h.p. guarantee shows up as a small max/min spread.
  Rng rng(3);
  const Graph g = gnmRandom(800, 8000, rng, {WeightModel::kUniform, 10.0}, true);
  std::vector<double> sizes;
  for (std::uint64_t seed = 1; seed <= 10; ++seed)
    sizes.push_back(static_cast<double>(
        buildCcSpanner(g, {.k = 6, .t = 2, .seed = seed}).edges.size()));
  const Summary s = summarize(sizes);
  EXPECT_LT(s.max / s.min, 1.5);
}

TEST(Statistical, SupernodeDecayAveragesToLemma512) {
  // Average the epoch-1 super-node survival over seeds; Lemma 5.12 predicts
  // n^{1 - t/k} after the first epoch (t iterations at n^{-1/k}).
  Rng rng(4);
  const std::size_t n = 3000;
  const Graph g = gnmRandom(n, 30000, rng, {}, true);
  const std::uint32_t k = 8, t = 2;
  std::vector<double> survivors;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    TradeoffParams p;
    p.k = k;
    p.t = t;
    p.seed = seed;
    const auto r = buildTradeoffSpanner(g, p);
    ASSERT_GE(r.supernodesPerEpoch.size(), 2u);
    survivors.push_back(static_cast<double>(r.supernodesPerEpoch[1]));
  }
  const double predicted = std::pow(double(n), 1.0 - double(t) / double(k));
  const double mean = summarize(survivors).mean;
  EXPECT_GT(mean, 0.4 * predicted);
  EXPECT_LT(mean, 1.8 * predicted);
}

TEST(Statistical, FailureInjectionUndersizedCluster) {
  // A simulator provisioned for a fraction of the tuples must refuse (loud
  // CapacityError), never silently truncate.
  Rng rng(5);
  const Graph g = gnmRandom(500, 5000, rng, {WeightModel::kUniform, 5.0}, true);
  MpcSimulator tiny(MpcConfig{4, 64});
  EXPECT_THROW(buildDistributedBaswanaSen(tiny, g, 3, 1), CapacityError);
}

TEST(Statistical, FailureInjectionHandBuiltConfigWithoutFloor) {
  // Hand-built configs bypassing MpcConfig::forInput's coordinator floor
  // are rejected by the sort's splitter check, not silently mis-sorted.
  Rng rng(6);
  std::vector<std::uint64_t> data(4096);
  for (auto& x : data) x = rng.next(1 << 20);
  MpcSimulator sim(MpcConfig{512, 40});  // 512 machines, 40-word memory
  DistVector<std::uint64_t> dv(sim, data);
  EXPECT_THROW(distSort(dv, std::less<>()), CapacityError);
}

}  // namespace
}  // namespace mpcspan
