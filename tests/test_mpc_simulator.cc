#include "mpc/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mpcspan {
namespace {

TEST(MpcSimulator, ConfigForInputSizesMachines) {
  const MpcConfig cfg = MpcConfig::forInput(1 << 16, 0.5);
  // Total memory covers slack * input, and the coordinator floor
  // S >= 8 * machines (needed by the O(1)-round primitives) holds.
  EXPECT_GE(cfg.numMachines * cfg.wordsPerMachine, 2u * (1 << 16));
  EXPECT_GE(cfg.wordsPerMachine, 8 * cfg.numMachines);
  // With a high gamma the floor is inactive and S = N^gamma exactly.
  const MpcConfig highGamma = MpcConfig::forInput(1 << 16, 0.8, 1.0);
  EXPECT_EQ(highGamma.wordsPerMachine,
            static_cast<std::size_t>(std::pow(double(1 << 16), 0.8)));
}

TEST(MpcSimulator, ConfigForInputCapacityNeverDipsBelowSlack) {
  // Property sweep: for every (n, gamma, slack), the configured cluster
  // must hold the slack-padded input — the rounding of numMachines /
  // wordsPerMachine may never lose capacity — and the coordinator floor
  // S >= 64 * machines must hold so the O(1)-round primitives fit.
  const double gammas[] = {0.3, 0.5, 0.6, 0.67, 0.8, 1.0};
  const double slacks[] = {0.5, 1.0, 1.5, 2.0, 3.0, 3.7, 8.0};
  for (std::size_t n = 16; n <= (1u << 22); n = n * 3 + 1) {
    for (const double gamma : gammas) {
      for (const double slack : slacks) {
        const MpcConfig cfg = MpcConfig::forInput(n, gamma, slack);
        const auto need = static_cast<std::size_t>(
            std::ceil(slack * static_cast<double>(std::max<std::size_t>(n, 16))));
        EXPECT_GE(cfg.numMachines * cfg.wordsPerMachine, need)
            << "n=" << n << " gamma=" << gamma << " slack=" << slack;
        EXPECT_GE(cfg.wordsPerMachine, 64 * cfg.numMachines)
            << "n=" << n << " gamma=" << gamma << " slack=" << slack;
        EXPECT_GE(cfg.wordsPerMachine, 16u);
        EXPECT_GE(cfg.numMachines, 1u);
      }
    }
  }
}

TEST(MpcSimulator, RejectsEmptyConfig) {
  EXPECT_THROW(MpcSimulator(MpcConfig{0, 16}), std::invalid_argument);
  EXPECT_THROW(MpcSimulator(MpcConfig{4, 0}), std::invalid_argument);
}

TEST(MpcSimulator, DeliversMessagesAndCountsRounds) {
  MpcSimulator sim(MpcConfig{3, 16});
  std::vector<std::vector<MpcSimulator::Message>> out(3);
  out[0].push_back({1, {10, 20}});
  out[2].push_back({1, {30}});
  out[1].push_back({0, {40}});
  const auto inbox = sim.communicate(std::move(out));
  EXPECT_EQ(sim.rounds(), 1u);
  EXPECT_EQ(sim.totalWordsSent(), 4u);
  EXPECT_EQ(inbox[1].size(), 3u);
  EXPECT_EQ(inbox[0], (std::vector<Word>{40}));
  EXPECT_TRUE(inbox[2].empty());
}

TEST(MpcSimulator, EnforcesSendCapacity) {
  MpcSimulator sim(MpcConfig{2, 4});
  std::vector<std::vector<MpcSimulator::Message>> out(2);
  out[0].push_back({1, {1, 2, 3, 4, 5}});
  EXPECT_THROW(sim.communicate(std::move(out)), CapacityError);
}

TEST(MpcSimulator, EnforcesReceiveCapacity) {
  MpcSimulator sim(MpcConfig{3, 4});
  std::vector<std::vector<MpcSimulator::Message>> out(3);
  out[0].push_back({2, {1, 2, 3}});
  out[1].push_back({2, {4, 5, 6}});
  EXPECT_THROW(sim.communicate(std::move(out)), CapacityError);
}

TEST(MpcSimulator, RejectsUnknownDestination) {
  MpcSimulator sim(MpcConfig{2, 8});
  std::vector<std::vector<MpcSimulator::Message>> out(2);
  out[0].push_back({5, {1}});
  EXPECT_THROW(sim.communicate(std::move(out)), std::invalid_argument);
}

TEST(MpcSimulator, RejectsWrongOutboxCount) {
  MpcSimulator sim(MpcConfig{2, 8});
  std::vector<std::vector<MpcSimulator::Message>> out(3);
  EXPECT_THROW(sim.communicate(std::move(out)), std::invalid_argument);
}

TEST(MpcSimulator, TracksPeakTraffic) {
  MpcSimulator sim(MpcConfig{2, 16});
  std::vector<std::vector<MpcSimulator::Message>> out(2);
  out[0].push_back({1, {1, 2, 3}});
  sim.communicate(std::move(out));
  std::vector<std::vector<MpcSimulator::Message>> out2(2);
  out2[1].push_back({0, {1}});
  sim.communicate(std::move(out2));
  EXPECT_EQ(sim.rounds(), 2u);
  EXPECT_EQ(sim.maxRoundWords(), 3u);
}

TEST(MpcSimulator, ChargeRoundsAccumulates) {
  MpcSimulator sim(MpcConfig{1, 8});
  sim.chargeRounds(5);
  EXPECT_EQ(sim.rounds(), 5u);
}

}  // namespace
}  // namespace mpcspan
