#include "util/args.hpp"

#include <gtest/gtest.h>

namespace mpcspan {
namespace {

ArgParser makeParser() {
  ArgParser p("tool", "test tool");
  p.flag("name", "default", "a string")
      .flag("count", "7", "an int")
      .flag("ratio", "0.5", "a double")
      .flag("on", "false", "a bool");
  return p;
}

bool parse(ArgParser& p, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "tool");
  return p.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, DefaultsApplyWhenUnset) {
  ArgParser p = makeParser();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_EQ(p.get("name"), "default");
  EXPECT_EQ(p.getInt("count"), 7);
  EXPECT_DOUBLE_EQ(p.getDouble("ratio"), 0.5);
  EXPECT_FALSE(p.getBool("on"));
  EXPECT_FALSE(p.has("name"));
}

TEST(Args, EqualsForm) {
  ArgParser p = makeParser();
  ASSERT_TRUE(parse(p, {"--name=alice", "--count=42"}));
  EXPECT_EQ(p.get("name"), "alice");
  EXPECT_EQ(p.getInt("count"), 42);
  EXPECT_TRUE(p.has("name"));
}

TEST(Args, SpaceForm) {
  ArgParser p = makeParser();
  ASSERT_TRUE(parse(p, {"--name", "bob", "--ratio", "2.25"}));
  EXPECT_EQ(p.get("name"), "bob");
  EXPECT_DOUBLE_EQ(p.getDouble("ratio"), 2.25);
}

TEST(Args, BooleanShortForm) {
  ArgParser p = makeParser();
  ASSERT_TRUE(parse(p, {"--on", "--name=x"}));
  EXPECT_TRUE(p.getBool("on"));
  EXPECT_EQ(p.get("name"), "x");
}

TEST(Args, BoolAcceptsSeveralSpellings) {
  for (const char* v : {"true", "1", "yes", "on"}) {
    ArgParser p = makeParser();
    ASSERT_TRUE(parse(p, {"--on", v}));
    EXPECT_TRUE(p.getBool("on")) << v;
  }
  ArgParser p = makeParser();
  ASSERT_TRUE(parse(p, {"--on", "false"}));
  EXPECT_FALSE(p.getBool("on"));
}

TEST(Args, UnknownFlagRejected) {
  ArgParser p = makeParser();
  EXPECT_FALSE(parse(p, {"--bogus=1"}));
  EXPECT_NE(p.error().find("bogus"), std::string::npos);
}

TEST(Args, PositionalRejected) {
  ArgParser p = makeParser();
  EXPECT_FALSE(parse(p, {"stray"}));
}

TEST(Args, HelpRequested) {
  ArgParser p = makeParser();
  ASSERT_TRUE(parse(p, {"--help"}));
  EXPECT_TRUE(p.helpRequested());
  const std::string u = p.usage();
  EXPECT_NE(u.find("--count"), std::string::npos);
  EXPECT_NE(u.find("an int"), std::string::npos);
}

TEST(Args, UnregisteredGetThrows) {
  ArgParser p = makeParser();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_THROW(p.get("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace mpcspan
