// The pipelined shard barrier: overlapped rounds must be bit-identical to
// the strict reference (rounds, ledger, kernel state, resident inbox
// contents) across topologies, shard/thread counts, and all three mesh
// transports; a kernel throw during the speculative phase aborts with no
// state leak and no zombies; a peer death during overlap surfaces
// ShardError for everyone; Topology::canOverlap gates per-round overlap
// (custom subclasses keep the strict barrier and shm falls back to the
// socket mesh); and the per-round communication budget fails a trickling
// peer instead of letting it extend the round unbounded.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/round_engine.hpp"
#include "runtime/shard/peer_mesh.hpp"
#include "runtime/shard/sharded_engine.hpp"
#include "runtime/shard/transport.hpp"
#include "runtime/shard/wire.hpp"
#include "runtime/topology.hpp"

namespace mpcspan {
namespace {

using runtime::CliqueTopology;
using runtime::Delivery;
using runtime::EngineConfig;
using runtime::KernelCtx;
using runtime::KernelId;
using runtime::Message;
using runtime::MpcTopology;
using runtime::PramTopology;
using runtime::RoundEngine;
using runtime::StepKernel;
using runtime::Topology;
using runtime::Transport;
using runtime::shard::DeadlineBudget;
using runtime::shard::ShardError;
using runtime::shard::WireReader;
using runtime::shard::WireWriter;

// --- canOverlap: the per-topology overlap contract. ---

/// Minimal custom topology: full validation delegated to an inner
/// MpcTopology, but none of the fused-barrier overrides — the base class
/// promises overlap only for free placement, so kernel rounds must keep
/// the strict barrier (and shm must fall back to the socket mesh, whose
/// strict conversation always runs validateSlice).
class CustomCapTopology final : public Topology {
 public:
  explicit CustomCapTopology(std::size_t cap) : inner_(cap) {}
  const char* name() const override { return "custom-cap"; }
  std::size_t validateSlice(std::size_t numMachines,
                            const std::vector<std::vector<Message>>& outboxes,
                            std::size_t begin, std::size_t end) const override {
    return inner_.validateSlice(numMachines, outboxes, begin, end);
  }

 private:
  MpcTopology inner_;
};

TEST(Pipeline, CanOverlapContract) {
  // All three built-ins split validation across the fused barrier exactly,
  // so every round kind may overlap.
  EXPECT_TRUE(MpcTopology(64).canOverlap(false));
  EXPECT_TRUE(MpcTopology(64).canOverlap(true));
  EXPECT_TRUE(CliqueTopology().canOverlap(false));
  EXPECT_TRUE(CliqueTopology().canOverlap(true));
  EXPECT_TRUE(PramTopology().canOverlap(false));
  EXPECT_TRUE(PramTopology().canOverlap(true));
  // A custom subclass that only implements validateSlice keeps the strict
  // barrier for kernel rounds; free-placement rounds validate nothing and
  // may always overlap.
  EXPECT_FALSE(CustomCapTopology(64).canOverlap(false));
  EXPECT_TRUE(CustomCapTopology(64).canOverlap(true));
}

TEST(Pipeline, BackendSelectionFollowsConfigAndEnv) {
  // Pin the env default regardless of what the outer test harness exports.
  ASSERT_EQ(::unsetenv("MPCSPAN_PIPELINE"), 0);
  {
    RoundEngine eng(EngineConfig{8, 1, 2, 1, 1},
                    std::make_unique<MpcTopology>(16));
    EXPECT_TRUE(eng.pipelinedShards());  // MPCSPAN_PIPELINE default: on
  }
  {
    RoundEngine eng(EngineConfig{8, 1, 2, 1, 1, Transport::kDefault,
                                 /*pipeline=*/0},
                    std::make_unique<MpcTopology>(16));
    EXPECT_FALSE(eng.pipelinedShards());
  }
  {
    // Relay rounds have no mesh to overlap on: pipeline=1 is inert.
    RoundEngine eng(EngineConfig{8, 1, 2, 1, 0, Transport::kDefault,
                                 /*pipeline=*/1},
                    std::make_unique<MpcTopology>(16));
    EXPECT_FALSE(eng.pipelinedShards());
  }
  ASSERT_EQ(::setenv("MPCSPAN_PIPELINE", "0", 1), 0);
  {
    RoundEngine eng(EngineConfig{8, 1, 2, 1, 1},
                    std::make_unique<MpcTopology>(16));
    EXPECT_FALSE(eng.pipelinedShards());
  }
  {
    // An explicit config wins over the env var.
    RoundEngine eng(EngineConfig{8, 1, 2, 1, 1, Transport::kDefault,
                                 /*pipeline=*/1},
                    std::make_unique<MpcTopology>(16));
    EXPECT_TRUE(eng.pipelinedShards());
  }
  ASSERT_EQ(::unsetenv("MPCSPAN_PIPELINE"), 0);
}

// --- Bit-identity: pipelined vs strict vs in-process golden. ---

/// Deterministic cross-shard-heavy kernel whose per-round emissions are a
/// pure function of the inbox, so a correctly-discarded abort leaves no
/// trace and any divergence in delivery order or speculative state
/// compounds across rounds. args[0] picks the topology-legal shape.
class PipeProbeKernel final : public StepKernel {
 public:
  static std::string kernelName() { return "test.pipeprobe"; }

  std::vector<Message> step(const KernelCtx& ctx) override {
    const Word mode = ctx.args.empty() ? 0 : ctx.args[0];
    const std::size_t n = ctx.numMachines;
    const std::size_t m = ctx.machine;
    Word sum = m + 1;
    for (const Delivery& d : ctx.inbox) sum += 3 * d.src + d.payload.front();
    std::vector<Message> out;
    if (mode == 0) {
      // MPC: mixed single- and multi-word fan-out.
      out.push_back({(m + sum) % n, {sum, sum ^ m}});
      out.push_back({(m * 3 + 1) % n, {sum}});
    } else if (mode == 1) {
      // Clique: one single-word message per ordered pair.
      out.push_back({(m + 1 + sum % (n - 1)) % n, {sum}});
    } else {
      // PRAM: concurrent single-word writes, priority-CRCW resolved.
      out.push_back({(m * 5 + sum) % 4, {sum}});
    }
    return out;
  }

  std::vector<Word> fetch(const KernelCtx& ctx) override {
    Word sum = ctx.machine;
    for (const Delivery& d : ctx.inbox) sum += 7 * d.src + d.payload.front();
    return {sum};
  }
};

std::unique_ptr<Topology> makeTopology(int mode) {
  if (mode == 0) return std::make_unique<MpcTopology>(64);
  if (mode == 1) return std::make_unique<CliqueTopology>();
  return std::make_unique<PramTopology>();
}

/// Everything observable after a kernel-round workload.
struct Result {
  std::vector<std::vector<Word>> fetched;
  std::vector<Word> flatInboxes;
  std::size_t rounds = 0, words = 0, maxRound = 0;

  friend bool operator==(const Result&, const Result&) = default;
};

Result collect(RoundEngine& eng, KernelId k) {
  Result res;
  res.fetched = eng.fetchKernel(k);
  for (const auto& inbox : eng.snapshotInboxes())
    for (const Delivery& d : inbox) {
      res.flatInboxes.push_back(d.src);
      res.flatInboxes.insert(res.flatInboxes.end(), d.payload.begin(),
                             d.payload.end());
    }
  res.rounds = eng.rounds();
  res.words = eng.totalWordsSent();
  res.maxRound = eng.maxRoundWords();
  return res;
}

Result runWorkload(int mode, std::size_t threads, std::size_t shards,
                   Transport transport, int pipeline) {
  const std::size_t n = 12;
  EngineConfig cfg{n,         threads,   shards, /*resident=*/1,
                   /*peerExchange=*/1,   transport, pipeline};
  RoundEngine eng(cfg, makeTopology(mode));
  const KernelId k = eng.registerKernel(
      PipeProbeKernel::kernelName(),
      [] { return std::make_unique<PipeProbeKernel>(); });
  for (int i = 0; i < 5; ++i) eng.step(k, {static_cast<Word>(mode)});
  // One free data-placement round rides the same overlap machinery.
  eng.stepShuffle(k, {static_cast<Word>(mode)});
  return collect(eng, k);
}

TEST(Pipeline, BitIdenticalToStrictAndInProcessOnAllTopologies) {
  for (const int mode : {0, 1, 2}) {
    const Result base =
        runWorkload(mode, 1, 1, Transport::kDefault, /*pipeline=*/-1);
    EXPECT_EQ(base.rounds, 5u) << "mode " << mode;
    for (const Transport transport :
         {Transport::kShmRing, Transport::kSocketMesh, Transport::kTcp}) {
      for (const std::size_t shards : {2u, 4u})
        for (const int pipeline : {0, 1})
          EXPECT_EQ(base, runWorkload(mode, 1, shards, transport, pipeline))
              << "mode " << mode << ", " << shards << " shards, transport "
              << static_cast<int>(transport) << ", pipeline=" << pipeline;
      EXPECT_EQ(base, runWorkload(mode, 2, 4, transport, /*pipeline=*/1))
          << "mode " << mode << ", 2 threads x 4 shards, transport "
          << static_cast<int>(transport);
    }
  }
}

TEST(Pipeline, ShmFallsBackToSocketMeshForCustomTopology) {
  // A topology without the fused-validation overrides cannot commit off
  // the shm ring's single-verdict barrier: the engine must route its
  // sections over the socket mesh instead (strict two-phase, full
  // validateSlice), and stay bit-identical to the in-process reference.
  auto run = [](std::size_t shards, Transport transport) {
    RoundEngine eng(EngineConfig{12, 1, shards, 1, 1, transport},
                    std::make_unique<CustomCapTopology>(64));
    const KernelId k = eng.registerKernel(
        PipeProbeKernel::kernelName(),
        [] { return std::make_unique<PipeProbeKernel>(); });
    for (int i = 0; i < 4; ++i) eng.step(k, {0});
    Result res = collect(eng, k);
    if (shards > 1) {
      EXPECT_FALSE(eng.shmRingShards());
      EXPECT_TRUE(eng.peerMeshShards());
    }
    return res;
  };
  const Result base = run(1, Transport::kDefault);
  EXPECT_EQ(run(3, Transport::kShmRing), base);
  EXPECT_EQ(run(3, Transport::kDefault), base);
}

// --- Abort semantics during overlap. ---

class OverlapThrower final : public StepKernel {
 public:
  std::vector<Message> step(const KernelCtx& ctx) override {
    if (!ctx.args.empty() && ctx.machine == 5)
      throw std::runtime_error("boom mid-overlap");
    const std::size_t n = ctx.numMachines;
    const std::size_t m = ctx.machine;
    Word sum = m + 3;
    for (const Delivery& d : ctx.inbox) sum += 5 * d.src + d.payload.front();
    return {{(m + sum) % n, {sum}}, {(m * 7 + 2) % n, {sum ^ m}}};
  }

  std::vector<Word> fetch(const KernelCtx& ctx) override {
    Word sum = 0;
    for (const Delivery& d : ctx.inbox) sum += d.src + d.payload.front();
    return {sum};
  }
};

TEST(Pipeline, KernelThrowDuringSpeculativeComputeAbortsCleanly) {
  // The abort lands at round r while the workers have already merged and
  // staged speculative r state into their back buffers. Discarding it must
  // leave the resident inboxes, ledger, and worker processes exactly as
  // before the round — and the rounds after the abort must match an
  // engine that never attempted it.
  for (const Transport transport :
       {Transport::kShmRing, Transport::kSocketMesh, Transport::kTcp}) {
    RoundEngine ref(EngineConfig{12, 1, 1}, std::make_unique<MpcTopology>(64));
    RoundEngine eng(EngineConfig{12, 1, 4, 1, 1, transport, /*pipeline=*/1},
                    std::make_unique<MpcTopology>(64));
    const KernelId kr = ref.registerKernel(
        "test.overthrow", [] { return std::make_unique<OverlapThrower>(); });
    const KernelId ke = eng.registerKernel(
        "test.overthrow", [] { return std::make_unique<OverlapThrower>(); });
    ref.step(kr);
    ref.step(kr);
    eng.step(ke);
    eng.step(ke);
    const std::vector<pid_t> pids = eng.shardBackend()->workerPids();
    ASSERT_EQ(pids.size(), 4u);
    const std::size_t wordsBefore = eng.totalWordsSent();
    EXPECT_THROW(eng.step(ke, {1}), std::runtime_error);
    EXPECT_EQ(eng.rounds(), 2u);
    EXPECT_EQ(eng.totalWordsSent(), wordsBefore);
    // Same worker processes — the abort forked nothing and killed nothing.
    EXPECT_EQ(eng.shardBackend()->workerPids(), pids);
    ref.step(kr);
    ref.step(kr);
    eng.step(ke);
    eng.step(ke);
    EXPECT_EQ(collect(eng, ke), collect(ref, kr))
        << "transport " << static_cast<int>(transport);
  }
}

TEST(Pipeline, PeerDeathDuringOverlapSurfacesShardErrorForAll) {
  // Shard 1 dies as its peers enter the speculative exchange — every
  // worker is mid-mesh with its verdict still pending. The engine must
  // fail the round loudly (not hang, not commit), stay failed, and reap
  // every worker.
  ASSERT_EQ(::setenv("MPCSPAN_TEST_PEER_DIE_SHARD", "1", 1), 0);
  std::vector<pid_t> pids;
  {
    RoundEngine eng(
        EngineConfig{8, 1, 4, 1, 1, Transport::kSocketMesh, /*pipeline=*/1},
        std::make_unique<MpcTopology>(32));
    const KernelId k = eng.registerKernel(
        PipeProbeKernel::kernelName(),
        [] { return std::make_unique<PipeProbeKernel>(); });
    // Fork the workers on a round that does not reach the fault hook.
    std::vector<std::vector<Message>> out(8);
    out[0].push_back({7, {1}});
    eng.exchange(std::move(out));
    pids = eng.shardBackend()->workerPids();
    ASSERT_EQ(pids.size(), 4u);
    EXPECT_THROW(eng.step(k, {0}), ShardError);
    EXPECT_THROW(eng.step(k, {0}), ShardError);  // the backend stays failed
  }
  ASSERT_EQ(::unsetenv("MPCSPAN_TEST_PEER_DIE_SHARD"), 0);
  for (const pid_t pid : pids) {
    int st = 0;
    EXPECT_EQ(::waitpid(pid, &st, WNOHANG), -1) << "worker leaked: " << pid;
    EXPECT_EQ(errno, ECHILD);
  }
}

// --- The per-round communication budget. ---

TEST(Pipeline, DeadlineBudgetSemantics) {
  {
    const DeadlineBudget unbounded(-1);
    EXPECT_FALSE(unbounded.bounded());
    EXPECT_EQ(unbounded.remainingMs(), -1);
    EXPECT_FALSE(unbounded.expired());
  }
  {
    const DeadlineBudget budget(200);
    EXPECT_TRUE(budget.bounded());
    EXPECT_EQ(budget.totalMs(), 200);
    EXPECT_GT(budget.remainingMs(), 0);
    EXPECT_FALSE(budget.expired());
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    EXPECT_EQ(budget.remainingMs(), 0);  // clamped, never negative
    EXPECT_TRUE(budget.expired());
  }
}

TEST(Pipeline, TricklingPeerExhaustsRoundBudget) {
  // A peer that keeps the connection alive but trickles one byte at a time
  // makes progress on every poll wait — a per-wait timeout would reset
  // forever and the round would stretch to (frame bytes x trickle gap).
  // The shared round budget must fail the exchange once the *total* wait
  // crosses it, while the same trickle without a budget still completes.
  const auto trickle = [](const runtime::shard::WireFd& fd) {
    // A valid empty mesh frame: u64 bodyLen = 8, then u64 rowCount = 0
    // (little-endian) — 16 bytes, one every 50 ms, ~800 ms total.
    std::uint8_t frame[16] = {8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
    for (const std::uint8_t byte : frame) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      ASSERT_EQ(::send(fd.fd(), &byte, 1, MSG_NOSIGNAL), 1);
    }
  };
  const std::vector<std::uint64_t> counts(2, 0);
  const std::vector<WireWriter> sections(2);
  {
    auto mesh = runtime::shard::makeMesh(2);
    std::thread peer([&] { trickle(mesh[1][0]); });
    const DeadlineBudget budget(250);
    EXPECT_THROW(runtime::shard::meshExchange(mesh[0], 0, counts, sections,
                                              &budget),
                 ShardError);
    peer.join();
  }
  {
    auto mesh = runtime::shard::makeMesh(2);
    std::thread peer([&] { trickle(mesh[1][0]); });
    std::vector<WireReader> frames =
        runtime::shard::meshExchange(mesh[0], 0, counts, sections);
    peer.join();
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[1].u64(), 0u);  // the trickled frame, intact
  }
}

}  // namespace
}  // namespace mpcspan
