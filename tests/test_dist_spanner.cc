// Bit-exact equivalence: the fully distributed Baswana-Sen (every find-min
// through real simulated machine rounds) must output the identical spanner
// to the host-side ClusterEngine under the same seed.
#include "mpc/dist_spanner.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/tradeoff.hpp"
#include "spanner/verify.hpp"

namespace mpcspan {
namespace {

class DistSpannerEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t, int>> {};

TEST_P(DistSpannerEquivalence, MatchesEngineExactly) {
  const auto [k, seed, weighted] = GetParam();
  Rng rng(seed * 97 + k);
  const WeightSpec weights = weighted ? WeightSpec{WeightModel::kUniform, 25.0}
                                      : WeightSpec{};
  const Graph g = gnmRandom(400, 2000, rng, weights, true);

  MpcSimulator sim(MpcConfig::forInput(8 * g.numEdges(), 0.6, 3.0));
  const DistSpannerResult dist = buildDistributedBaswanaSen(sim, g, k, seed);
  const SpannerResult engine = buildBaswanaSen(g, {.k = k, .seed = seed});

  EXPECT_EQ(dist.edges, engine.edges)
      << "k=" << k << " seed=" << seed << " weighted=" << weighted;
  EXPECT_EQ(dist.iterations, engine.iterations);
  EXPECT_GT(dist.simulatorRounds, 0u);
  // O(1) communication rounds per iteration: 2 kernels' worth of
  // sort+reduce, ~8 rounds each, plus phase 2.
  EXPECT_LE(dist.simulatorRounds, 16u * (k + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DistSpannerEquivalence,
    ::testing::Combine(::testing::Values(2u, 3u, 4u, 6u),
                       ::testing::Values<std::uint64_t>(1, 5),
                       ::testing::Values(0, 1)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_wt" : "_unit");
    });

class DistTradeoffEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> {};

TEST_P(DistTradeoffEquivalence, MatchesEngineExactlyWithContractions) {
  const auto [k, t, seed] = GetParam();
  Rng rng(seed * 31 + k + t);
  const Graph g = gnmRandom(400, 2400, rng, {WeightModel::kUniform, 40.0}, true);

  MpcSimulator sim(MpcConfig::forInput(8 * g.numEdges(), 0.6, 3.0));
  const DistSpannerResult dist = buildDistributedTradeoff(sim, g, k, t, seed);
  TradeoffParams p;
  p.k = k;
  p.t = t;
  p.seed = seed;
  const SpannerResult engine = buildTradeoffSpanner(g, p);

  EXPECT_EQ(dist.edges, engine.edges) << "k=" << k << " t=" << t << " seed=" << seed;
  EXPECT_EQ(dist.iterations, engine.iterations);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DistTradeoffEquivalence,
    ::testing::Combine(::testing::Values(4u, 8u, 16u), ::testing::Values(1u, 2u, 3u),
                       ::testing::Values<std::uint64_t>(3, 11)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(DistSpanner, KOneReturnsAllEdges) {
  Rng rng(1);
  const Graph g = gnmRandom(50, 120, rng);
  MpcSimulator sim(MpcConfig::forInput(8 * g.numEdges(), 0.6, 3.0));
  const auto r = buildDistributedBaswanaSen(sim, g, 1, 1);
  EXPECT_EQ(r.edges.size(), g.numEdges());
  EXPECT_EQ(r.simulatorRounds, 0u);
}

TEST(DistSpanner, OutputIsAValidSpanner) {
  Rng rng(2);
  const Graph g = gnmRandom(300, 1800, rng, {WeightModel::kExponential, 40.0}, true);
  MpcSimulator sim(MpcConfig::forInput(8 * g.numEdges(), 0.6, 3.0));
  const std::uint32_t k = 4;
  const auto r = buildDistributedBaswanaSen(sim, g, k, 7);
  const auto report = verifySpanner(g, r.edges, 2.0 * k - 1.0);
  EXPECT_TRUE(report.spanning);
  EXPECT_EQ(report.violations, 0u);
}

TEST(DistSpanner, RoundsScaleWithKNotN) {
  Rng rng(3);
  const Graph small = gnmRandom(200, 1000, rng, {}, true);
  const Graph large = gnmRandom(1600, 8000, rng, {}, true);
  MpcSimulator simSmall(MpcConfig::forInput(8 * small.numEdges(), 0.6, 3.0));
  MpcSimulator simLarge(MpcConfig::forInput(8 * large.numEdges(), 0.6, 3.0));
  const auto rs = buildDistributedBaswanaSen(simSmall, small, 4, 9);
  const auto rl = buildDistributedBaswanaSen(simLarge, large, 4, 9);
  // 8x more data, same number of communication rounds (within slack: round
  // counts vary by +-1 with the broadcast fan-out).
  EXPECT_LE(rl.simulatorRounds, rs.simulatorRounds + 8);
}

}  // namespace
}  // namespace mpcspan
