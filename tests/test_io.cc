#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"

namespace mpcspan {
namespace {

TEST(Io, RoundTripPreservesGraph) {
  Rng rng(1);
  const Graph g = gnmRandom(64, 180, rng, {WeightModel::kUniform, 20.0});
  std::stringstream ss;
  writeEdgeList(g, ss);
  const Graph back = readEdgeList(ss);
  ASSERT_EQ(back.numVertices(), g.numVertices());
  ASSERT_EQ(back.numEdges(), g.numEdges());
  for (EdgeId i = 0; i < g.numEdges(); ++i) {
    EXPECT_EQ(back.edge(i).u, g.edge(i).u);
    EXPECT_EQ(back.edge(i).v, g.edge(i).v);
    EXPECT_NEAR(back.edge(i).w, g.edge(i).w, 1e-6 * g.edge(i).w);
  }
}

TEST(Io, DefaultWeightIsOne) {
  std::stringstream ss("n 3\n0 1\n1 2\n");
  const Graph g = readEdgeList(ss);
  EXPECT_EQ(g.numEdges(), 2u);
  EXPECT_TRUE(g.isUnweighted());
}

TEST(Io, SkipsComments) {
  std::stringstream ss("# header\nn 2\n# edge below\n0 1 3.5\n");
  const Graph g = readEdgeList(ss);
  ASSERT_EQ(g.numEdges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 3.5);
}

TEST(Io, RejectsMissingHeader) {
  std::stringstream ss("0 1 1.0\n");
  EXPECT_THROW(readEdgeList(ss), std::runtime_error);
  std::stringstream empty;
  EXPECT_THROW(readEdgeList(empty), std::runtime_error);
}

TEST(Io, FileRoundTrip) {
  Rng rng(2);
  const Graph g = cycleGraph(12, rng, {WeightModel::kInteger, 5.0});
  const std::string path = ::testing::TempDir() + "/mpcspan_io_test.txt";
  writeEdgeListFile(g, path);
  const Graph back = readEdgeListFile(path);
  EXPECT_EQ(back.numEdges(), g.numEdges());
  EXPECT_THROW(readEdgeListFile(path + ".missing"), std::runtime_error);
}

// --- SNAP / DIMACS loader. ---

Graph fromSnap(const std::string& text) {
  std::istringstream in(text);
  return readSnapDimacs(in);
}

TEST(SnapDimacs, ReadsSnapEdgeList) {
  const Graph g = fromSnap("# comment\n% comment\n0 1\n1 2 2.5\n3 1\n");
  EXPECT_EQ(g.numVertices(), 4u);  // inferred max id + 1
  EXPECT_EQ(g.numEdges(), 3u);
  EXPECT_DOUBLE_EQ(g.edge(1).w, 2.5);  // canonical order: (0,1), (1,2), (1,3)
  EXPECT_EQ(g.edge(2).u, 1u);
  EXPECT_EQ(g.edge(2).v, 3u);
}

TEST(SnapDimacs, CanonicalizesDuplicatesAndSelfLoops) {
  // Both orientations + a repeat collapse to one edge at minimum weight;
  // the self-loop is dropped.
  const Graph g = fromSnap("0 1 5\n1 0 3\n0 1 9\n2 2 4\n1 2 1\n");
  EXPECT_EQ(g.numEdges(), 2u);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 3.0);
}

TEST(SnapDimacs, ReadsDimacsFormat) {
  const Graph g = fromSnap(
      "c a DIMACS shortest-path file\n"
      "p sp 4 4\n"
      "a 1 2 7\n"
      "a 2 1 7\n"
      "a 2 3 2\n"
      "a 4 3 1\n");
  EXPECT_EQ(g.numVertices(), 4u);  // from the header, 1-indexed -> 0-indexed
  EXPECT_EQ(g.numEdges(), 3u);     // forward/backward arcs collapse
  EXPECT_DOUBLE_EQ(g.edge(0).w, 7.0);
  EXPECT_EQ(g.edge(2).u, 2u);
  EXPECT_EQ(g.edge(2).v, 3u);
}

TEST(SnapDimacs, EmptyInputYieldsEmptyGraph) {
  const Graph g = fromSnap("# nothing but comments\n\n");
  EXPECT_EQ(g.numVertices(), 0u);
  EXPECT_EQ(g.numEdges(), 0u);
}

TEST(SnapDimacs, RejectsMalformedInput) {
  // Non-numeric vertex id.
  EXPECT_THROW(fromSnap("0 x\n"), std::runtime_error);
  // Missing endpoint.
  EXPECT_THROW(fromSnap("7\n"), std::runtime_error);
  // Trailing tokens.
  EXPECT_THROW(fromSnap("0 1 2.0 junk\n"), std::runtime_error);
  // Negative / non-finite / zero weights.
  EXPECT_THROW(fromSnap("0 1 -2\n"), std::runtime_error);
  EXPECT_THROW(fromSnap("0 1 0\n"), std::runtime_error);
  EXPECT_THROW(fromSnap("0 1 inf\n"), std::runtime_error);
  // DIMACS: arc before header, id out of the header range, arc-count
  // mismatch, malformed header.
  EXPECT_THROW(fromSnap("a 1 2 3\n"), std::runtime_error);
  EXPECT_THROW(fromSnap("p sp 2 1\na 1 3 1\n"), std::runtime_error);
  EXPECT_THROW(fromSnap("p sp 2 1\na 0 1 1\n"), std::runtime_error);  // 1-indexed
  EXPECT_THROW(fromSnap("p sp 2 2\na 1 2 1\n"), std::runtime_error);
  EXPECT_THROW(fromSnap("p sp\n"), std::runtime_error);
  EXPECT_THROW(fromSnap("p tw 2 1\na 1 2 1\n"), std::runtime_error);
  // Plain edge rows are not allowed once the DIMACS header was seen.
  EXPECT_THROW(fromSnap("p sp 2 1\n0 1 1\n"), std::runtime_error);
}

TEST(SnapDimacs, ErrorsNameTheLine) {
  try {
    fromSnap("0 1\n1 2\nbogus line\n");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

// --- Binary graph round trip. ---

TEST(BinaryGraph, RoundTripIsExact) {
  Rng rng(5);
  const Graph g = gnmRandom(50, 140, rng, {WeightModel::kUniform, 30.0});
  std::ostringstream out(std::ios::binary);
  writeGraphBinary(g, out);
  std::istringstream in(out.str(), std::ios::binary);
  const Graph back = readGraphBinary(in);
  ASSERT_EQ(back.numVertices(), g.numVertices());
  // Edge ids round-trip exactly: same edges, same order, bit-equal weights.
  EXPECT_EQ(back.edges(), g.edges());
}

TEST(BinaryGraph, TruncationAndCorruptionAreRejected) {
  Rng rng(6);
  const Graph g = gnmRandom(20, 40, rng, {WeightModel::kUniform, 9.0});
  std::ostringstream out(std::ios::binary);
  writeGraphBinary(g, out);
  const std::string bytes = out.str();
  for (std::size_t len : {std::size_t{0}, std::size_t{3}, std::size_t{10},
                          bytes.size() / 2, bytes.size() - 1}) {
    std::istringstream in(bytes.substr(0, len), std::ios::binary);
    EXPECT_THROW(readGraphBinary(in), std::runtime_error) << "len=" << len;
  }
  std::string bad = bytes;
  bad[0] = 'Z';  // magic
  std::istringstream in(bad, std::ios::binary);
  EXPECT_THROW(readGraphBinary(in), std::runtime_error);
}

}  // namespace
}  // namespace mpcspan
