#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"

namespace mpcspan {
namespace {

TEST(Io, RoundTripPreservesGraph) {
  Rng rng(1);
  const Graph g = gnmRandom(64, 180, rng, {WeightModel::kUniform, 20.0});
  std::stringstream ss;
  writeEdgeList(g, ss);
  const Graph back = readEdgeList(ss);
  ASSERT_EQ(back.numVertices(), g.numVertices());
  ASSERT_EQ(back.numEdges(), g.numEdges());
  for (EdgeId i = 0; i < g.numEdges(); ++i) {
    EXPECT_EQ(back.edge(i).u, g.edge(i).u);
    EXPECT_EQ(back.edge(i).v, g.edge(i).v);
    EXPECT_NEAR(back.edge(i).w, g.edge(i).w, 1e-6 * g.edge(i).w);
  }
}

TEST(Io, DefaultWeightIsOne) {
  std::stringstream ss("n 3\n0 1\n1 2\n");
  const Graph g = readEdgeList(ss);
  EXPECT_EQ(g.numEdges(), 2u);
  EXPECT_TRUE(g.isUnweighted());
}

TEST(Io, SkipsComments) {
  std::stringstream ss("# header\nn 2\n# edge below\n0 1 3.5\n");
  const Graph g = readEdgeList(ss);
  ASSERT_EQ(g.numEdges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 3.5);
}

TEST(Io, RejectsMissingHeader) {
  std::stringstream ss("0 1 1.0\n");
  EXPECT_THROW(readEdgeList(ss), std::runtime_error);
  std::stringstream empty;
  EXPECT_THROW(readEdgeList(empty), std::runtime_error);
}

TEST(Io, FileRoundTrip) {
  Rng rng(2);
  const Graph g = cycleGraph(12, rng, {WeightModel::kInteger, 5.0});
  const std::string path = ::testing::TempDir() + "/mpcspan_io_test.txt";
  writeEdgeListFile(g, path);
  const Graph back = readEdgeListFile(path);
  EXPECT_EQ(back.numEdges(), g.numEdges());
  EXPECT_THROW(readEdgeListFile(path + ".missing"), std::runtime_error);
}

}  // namespace
}  // namespace mpcspan
