// Query artifacts: build-once/serve-many round trips, and corruption
// resistance — truncated or bit-flipped artifacts must fail with a clean
// std::runtime_error, never a partially valid object or a huge allocation.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "graph/distance.hpp"
#include "graph/generators.hpp"
#include "query/build.hpp"

namespace mpcspan {
namespace {

Graph testGraph(std::size_t n = 120, std::size_t m = 480) {
  Rng rng(8);
  return gnmRandom(n, m, rng, {WeightModel::kUniform, 20.0}, /*connected=*/true);
}

query::QueryArtifact buildSmall(const std::string& algo = "baswana-sen") {
  query::BuildPlan plan;
  plan.algo = algo;
  plan.k = 3;
  plan.sketchK = 2;
  plan.cacheSources = 16;
  return query::buildArtifact(testGraph(), plan);
}

std::string serialized(const query::QueryArtifact& a) {
  std::ostringstream out(std::ios::binary);
  query::saveArtifact(a, out);
  return out.str();
}

TEST(Artifact, RoundTripPreservesEveryQueryAnswer) {
  const auto a = buildSmall();
  std::istringstream in(serialized(a), std::ios::binary);
  const auto b = query::loadArtifact(in);

  EXPECT_EQ(b.graph.numVertices(), a.graph.numVertices());
  EXPECT_EQ(b.graph.numEdges(), a.graph.numEdges());
  EXPECT_EQ(b.graph.edges(), a.graph.edges());
  EXPECT_EQ(b.spannerEdges, a.spannerEdges);
  EXPECT_EQ(b.algorithm, a.algorithm);
  EXPECT_EQ(b.k, a.k);
  EXPECT_EQ(b.spannerStretch, a.spannerStretch);
  EXPECT_EQ(b.composedStretch, a.composedStretch);
  EXPECT_EQ(b.cacheSources, a.cacheSources);
  EXPECT_EQ(b.sketches.totalBunchEntries(), a.sketches.totalBunchEntries());

  // The loaded sketches answer bit-identically (no recomputation happened:
  // the tables were adopted as-is).
  for (VertexId u = 0; u < a.graph.numVertices(); u += 5)
    for (VertexId v = 0; v < a.graph.numVertices(); v += 3)
      EXPECT_EQ(b.sketches.query(u, v), a.sketches.query(u, v)) << u << "," << v;
}

TEST(Artifact, ReloadedPlaneServesWithoutRebuild) {
  const auto a = buildSmall();
  std::istringstream in(serialized(a), std::ios::binary);
  const auto b = query::loadArtifact(in);
  const auto planeA = query::makeQueryPlane(a);
  const auto planeB = query::makeQueryPlane(b);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const auto u = static_cast<VertexId>(rng.next(a.graph.numVertices()));
    const auto v = static_cast<VertexId>(rng.next(a.graph.numVertices()));
    EXPECT_EQ(planeB.tiered->query(u, v), planeA.tiered->query(u, v));
  }
}

TEST(Artifact, DistributedBuildRoundTrips) {
  // An artifact produced by the sharded MPC pipeline reloads and serves
  // like a host-built one; the simulator's ledger rides along.
  query::BuildPlan plan;
  plan.algo = "dist-baswana-sen";
  plan.k = 3;
  plan.sketchK = 2;
  const auto a = query::buildArtifact(testGraph(), plan);
  EXPECT_GT(a.buildRounds, 0u);
  std::istringstream in(serialized(a), std::ios::binary);
  const auto b = query::loadArtifact(in);
  EXPECT_EQ(b.buildRounds, a.buildRounds);
  EXPECT_EQ(b.wordsMoved, a.wordsMoved);
  EXPECT_EQ(b.spannerEdges, a.spannerEdges);
  const auto plane = query::makeQueryPlane(b);
  const Weight est = plane.tiered->query(0, 7);
  const Weight exact = dijkstraPair(b.graph, 0, 7);
  EXPECT_GE(est, exact - 1e-12);
  EXPECT_LE(est, b.composedStretch * exact + 1e-9);
}

TEST(Artifact, FileRoundTrip) {
  const auto a = buildSmall();
  const std::string path = testing::TempDir() + "artifact_roundtrip.mpqa";
  query::saveArtifactFile(a, path);
  const auto b = query::loadArtifactFile(path);
  EXPECT_EQ(b.spannerEdges, a.spannerEdges);
  std::remove(path.c_str());
}

TEST(Artifact, BadMagicAndVersionAreRejected) {
  const auto a = buildSmall();
  std::string bytes = serialized(a);
  {
    std::string bad = bytes;
    bad[0] = 'X';
    std::istringstream in(bad, std::ios::binary);
    EXPECT_THROW(query::loadArtifact(in), std::runtime_error);
  }
  {
    std::string bad = bytes;
    bad[4] = 99;  // version field
    std::istringstream in(bad, std::ios::binary);
    EXPECT_THROW(query::loadArtifact(in), std::runtime_error);
  }
}

TEST(Artifact, EveryTruncationFailsCleanly) {
  const auto a = buildSmall();
  const std::string bytes = serialized(a);
  ASSERT_GT(bytes.size(), 64u);
  // Truncate at a spread of prefixes crossing every section boundary.
  for (std::size_t frac = 0; frac <= 20; ++frac) {
    const std::size_t len = bytes.size() * frac / 21;
    std::istringstream in(bytes.substr(0, len), std::ios::binary);
    EXPECT_THROW(query::loadArtifact(in), std::runtime_error) << "len=" << len;
  }
  // One byte short.
  std::istringstream in(bytes.substr(0, bytes.size() - 1), std::ios::binary);
  EXPECT_THROW(query::loadArtifact(in), std::runtime_error);
}

TEST(Artifact, TrailingGarbageIsRejected) {
  const auto a = buildSmall();
  std::istringstream in(serialized(a) + "x", std::ios::binary);
  EXPECT_THROW(query::loadArtifact(in), std::runtime_error);
}

TEST(Artifact, CorruptSketchTablesAreRejected) {
  const auto a = buildSmall();
  const std::string bytes = serialized(a);
  // Flip bytes across the payload; every mutation must either load to a
  // fully valid artifact (the flip hit a don't-care bit such as a weight
  // mantissa) or throw std::runtime_error — never crash, never hand back
  // partial state.
  std::size_t rejected = 0;
  for (std::size_t pos = 8; pos < bytes.size(); pos += bytes.size() / 97 + 1) {
    std::string bad = bytes;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x5a);
    std::istringstream in(bad, std::ios::binary);
    try {
      const auto b = query::loadArtifact(in);
      // Loaded: the artifact must be internally consistent enough to serve.
      (void)b.sketches.query(0, 1);
    } catch (const std::runtime_error&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);  // at least some flips hit validated fields
}

TEST(Artifact, UnknownAlgoIsRejectedAtBuildTime) {
  query::BuildPlan plan;
  plan.algo = "nope";
  EXPECT_THROW(query::buildArtifact(testGraph(), plan), std::invalid_argument);
}

}  // namespace
}  // namespace mpcspan
