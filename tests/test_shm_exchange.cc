// The shared-memory ring transport: resident STEP rounds over the shm
// rings must be bit-identical to the socket mesh and the in-process
// reference (rounds, ledger, kernel state, resident inbox contents) across
// shard and thread counts on all three topologies; oversized frames chunk
// through a tiny ring with backpressure instead of deadlocking; a peer
// death mid-exchange surfaces ShardError for everyone and leaves no shm
// object behind (the arena is unlinked at creation, so /dev/shm must stay
// clean even while engines are alive); and a corrupt ring length prefix is
// rejected as ShardError, never chased out of bounds.
#include "runtime/shard/shm_ring.hpp"

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "runtime/round_engine.hpp"
#include "runtime/shard/peer_mesh.hpp"
#include "runtime/shard/sharded_engine.hpp"
#include "runtime/shard/wire.hpp"

namespace mpcspan {
namespace {

using runtime::CliqueTopology;
using runtime::Delivery;
using runtime::EngineConfig;
using runtime::KernelCtx;
using runtime::KernelId;
using runtime::Message;
using runtime::MpcTopology;
using runtime::PramTopology;
using runtime::RoundEngine;
using runtime::StepKernel;
using runtime::Topology;
using runtime::shard::kMaxFrameBytes;
using runtime::shard::mergeSectionRows;
using runtime::shard::RingHdr;
using runtime::shard::ShardError;
using runtime::shard::ShmArena;
using runtime::shard::ShmSendState;
using runtime::shard::WireFd;
using runtime::shard::WireReader;
using runtime::shard::WireWriter;

/// True when /dev/shm holds any mpcspan shm object. The arena unlinks its
/// object the moment it is mapped, so this must hold even while engines
/// are alive — a crashed run can never orphan a segment.
bool shmDirClean() {
  std::error_code ec;
  for (const auto& e :
       std::filesystem::directory_iterator("/dev/shm", ec)) {
    if (e.path().filename().string().starts_with("mpcspan")) return false;
  }
  return true;
}

/// Deterministic cross-shard-heavy kernel (the test_peer_exchange probe):
/// per-machine owned state feeds the next round's emissions, so any
/// divergence in routing or merge order compounds across rounds.
class ShmProbeKernel final : public StepKernel {
 public:
  static std::string kernelName() { return "test.shmprobe"; }

  std::vector<Message> step(const KernelCtx& ctx) override {
    ensureSized(ctx);
    const Word mode = ctx.args.empty() ? 0 : ctx.args[0];
    const std::size_t n = ctx.numMachines;
    const std::size_t m = ctx.machine;
    Word sum = 1;
    for (const Delivery& d : ctx.inbox) sum += 3 * d.src + d.payload.front();
    state_[m] += sum;
    const Word r = ++round_[m];
    std::vector<Message> out;
    if (mode == 0) {
      out.push_back({(m + r) % n, {state_[m], state_[m] ^ m, r}});
      out.push_back({(m * 3 + 1) % n, {state_[m]}});
      if (m % 2 == 0) out.push_back({(m + n - 1) % n, {r, static_cast<Word>(m)}});
    } else if (mode == 1) {
      out.push_back({(m + r) % n, {state_[m]}});
    } else {
      out.push_back({(m * 5 + r) % 4, {state_[m]}});
    }
    return out;
  }

  std::vector<Word> fetch(const KernelCtx& ctx) override {
    ensureSized(ctx);
    return {state_[ctx.machine], round_[ctx.machine]};
  }

 private:
  void ensureSized(const KernelCtx& ctx) {
    std::call_once(sized_, [&] {
      state_.resize(ctx.numMachines);
      round_.resize(ctx.numMachines);
    });
  }

  std::once_flag sized_;
  std::vector<Word> state_;
  std::vector<Word> round_;
};

std::unique_ptr<Topology> makeTopology(int mode) {
  if (mode == 0) return std::make_unique<MpcTopology>(64);
  if (mode == 1) return std::make_unique<CliqueTopology>();
  return std::make_unique<PramTopology>();
}

/// Everything observable after a kernel-round workload.
struct Result {
  std::vector<std::vector<Word>> fetched;
  std::vector<Word> flatInboxes;
  std::size_t rounds = 0, words = 0, maxRound = 0;

  friend bool operator==(const Result&, const Result&) = default;
};

Result observe(RoundEngine& eng, KernelId k) {
  Result res;
  res.fetched = eng.fetchKernel(k);
  for (const auto& inbox : eng.snapshotInboxes())
    for (const Delivery& d : inbox) {
      res.flatInboxes.push_back(d.src);
      res.flatInboxes.insert(res.flatInboxes.end(), d.payload.begin(),
                             d.payload.end());
    }
  res.rounds = eng.rounds();
  res.words = eng.totalWordsSent();
  res.maxRound = eng.maxRoundWords();
  return res;
}

Result runWorkload(int mode, std::size_t threads, std::size_t shards,
                   runtime::Transport transport) {
  const std::size_t n = 12;
  EngineConfig cfg{n, threads, shards, /*resident=*/1, /*peerExchange=*/1,
                   transport};
  RoundEngine eng(cfg, makeTopology(mode));
  const KernelId k = eng.registerKernel(
      ShmProbeKernel::kernelName(),
      [] { return std::make_unique<ShmProbeKernel>(); });
  for (int i = 0; i < 5; ++i) eng.step(k, {static_cast<Word>(mode)});
  // One free data-placement round rides the same exchange machinery.
  eng.stepShuffle(k, {static_cast<Word>(mode)});
  return observe(eng, k);
}

TEST(ShmExchange, BitIdenticalToSocketMeshAndInProcessOnAllTopologies) {
  for (const int mode : {0, 1, 2}) {
    const Result base = runWorkload(mode, 1, 1, runtime::Transport::kDefault);
    EXPECT_EQ(base.rounds, 5u) << "mode " << mode;
    for (const std::size_t shards : {2u, 4u})
      for (const std::size_t threads : {1u, 2u}) {
        EXPECT_EQ(base,
                  runWorkload(mode, threads, shards,
                              runtime::Transport::kShmRing))
            << "mode " << mode << ", " << shards << " shards x " << threads
            << " threads, shm";
        EXPECT_EQ(base,
                  runWorkload(mode, threads, shards,
                              runtime::Transport::kSocketMesh))
            << "mode " << mode << ", " << shards << " shards x " << threads
            << " threads, socket";
      }
  }
  EXPECT_TRUE(shmDirClean());
}

TEST(ShmExchange, BackendSelectionFollowsConfigAndEnv) {
  // This test exercises the kDefault resolution chain, so neutralize an
  // outer MPCSPAN_TCP_EXCHANGE (the CI tcp leg sets it process-wide) and
  // restore it afterwards for the remaining tests in this binary.
  const char* tcpEnv = std::getenv("MPCSPAN_TCP_EXCHANGE");
  const std::string tcpSaved = tcpEnv ? tcpEnv : "";
  if (tcpEnv) {
    ASSERT_EQ(::unsetenv("MPCSPAN_TCP_EXCHANGE"), 0);
  }
  {
    RoundEngine eng(EngineConfig{8, 1, 2, 1, 1, runtime::Transport::kShmRing},
                    std::make_unique<MpcTopology>(16));
    EXPECT_TRUE(eng.peerMeshShards());
    EXPECT_TRUE(eng.shmRingShards());
    // Alive engine, clean /dev/shm: the arena object is already unlinked.
    EXPECT_TRUE(shmDirClean());
  }
  {
    RoundEngine eng(
        EngineConfig{8, 1, 2, 1, 1, runtime::Transport::kSocketMesh},
        std::make_unique<MpcTopology>(16));
    EXPECT_TRUE(eng.peerMeshShards());
    EXPECT_FALSE(eng.shmRingShards());
  }
  {
    // peerExchange=0 forces the relay; no mesh, no rings.
    RoundEngine eng(EngineConfig{8, 1, 2, 1, 0},
                    std::make_unique<MpcTopology>(16));
    EXPECT_FALSE(eng.peerMeshShards());
    EXPECT_FALSE(eng.shmRingShards());
  }
  ASSERT_EQ(::setenv("MPCSPAN_SHM_EXCHANGE", "0", 1), 0);
  {
    RoundEngine eng(EngineConfig{8, 1, 2}, std::make_unique<MpcTopology>(16));
    EXPECT_TRUE(eng.peerMeshShards());
    EXPECT_FALSE(eng.shmRingShards());
  }
  ASSERT_EQ(::unsetenv("MPCSPAN_SHM_EXCHANGE"), 0);
  {
    RoundEngine eng(EngineConfig{8, 1, 2}, std::make_unique<MpcTopology>(16));
    EXPECT_TRUE(eng.shmRingShards());
    EXPECT_FALSE(eng.tcpMeshShards());
  }
  // MPCSPAN_TCP_EXCHANGE=1 outranks the shm/socket default resolution.
  ASSERT_EQ(::setenv("MPCSPAN_TCP_EXCHANGE", "1", 1), 0);
  {
    RoundEngine eng(EngineConfig{8, 1, 2}, std::make_unique<MpcTopology>(16));
    EXPECT_TRUE(eng.peerMeshShards());
    EXPECT_TRUE(eng.tcpMeshShards());
    EXPECT_FALSE(eng.shmRingShards());
  }
  ASSERT_EQ(::unsetenv("MPCSPAN_TCP_EXCHANGE"), 0);
  if (!tcpSaved.empty()) {
    ASSERT_EQ(::setenv("MPCSPAN_TCP_EXCHANGE", tcpSaved.c_str(), 1), 0);
  }
}

/// Emits one ~1.6 MB payload per machine per round — hundreds of ring
/// lengths under MPCSPAN_SHM_RING_BYTES=4096, so every frame must stream
/// chunk by chunk with doorbell backpressure.
class BigFrameKernel final : public StepKernel {
 public:
  static constexpr std::size_t kWords = 200000;  // 1.6 MB of payload

  std::vector<Message> step(const KernelCtx& ctx) override {
    ensureSized(ctx);
    const std::size_t n = ctx.numMachines;
    const std::size_t m = ctx.machine;
    Word seed = m + 1;
    for (const Delivery& d : ctx.inbox) seed += d.payload[0] + d.payload[kWords / 2];
    seen_[m] += seed;
    std::vector<Word> pay(kWords);
    for (std::size_t w = 0; w < kWords; ++w)
      pay[w] = seed * 2654435761u + w;
    return {{(m + 1) % n, std::move(pay)}};
  }

  std::vector<Word> fetch(const KernelCtx& ctx) override {
    ensureSized(ctx);
    return {seen_[ctx.machine]};
  }

 private:
  void ensureSized(const KernelCtx& ctx) {
    std::call_once(sized_, [&] { seen_.resize(ctx.numMachines); });
  }

  std::once_flag sized_;
  std::vector<Word> seen_;
};

Result runBigFrames(std::size_t shards, runtime::Transport transport) {
  const std::size_t n = 4;
  EngineConfig cfg{n, 1, shards, 1, 1, transport};
  RoundEngine eng(cfg, std::make_unique<MpcTopology>(BigFrameKernel::kWords));
  const KernelId k = eng.registerKernel(
      "test.bigframe", [] { return std::make_unique<BigFrameKernel>(); });
  eng.step(k);
  eng.step(k);
  return observe(eng, k);
}

TEST(ShmExchange, OversizedFramesChunkThroughTinyRingWithBackpressure) {
  ASSERT_EQ(::setenv("MPCSPAN_SHM_RING_BYTES", "4096", 1), 0);
  const Result base = runBigFrames(1, runtime::Transport::kDefault);
  for (const std::size_t shards : {2u, 4u}) {
    EXPECT_EQ(base, runBigFrames(shards, runtime::Transport::kShmRing))
        << shards << " shards, shm, 4 KiB ring";
    EXPECT_EQ(base, runBigFrames(shards, runtime::Transport::kSocketMesh))
        << shards << " shards, socket";
  }
  ASSERT_EQ(::unsetenv("MPCSPAN_SHM_RING_BYTES"), 0);
  EXPECT_TRUE(shmDirClean());
}

TEST(ShmExchange, PeerDeathMidExchangeSurfacesShardErrorForAll) {
  // The injected fault (MPCSPAN_TEST_PEER_DIE_SHARD, read at worker fork)
  // kills shard 1 right before it pre-writes its frames — mid shm exchange
  // from every peer's point of view. Every other worker must observe the
  // dead peer (doorbell EOF, or the coordinator the missing report), the
  // engine must fail loudly (not hang), stay failed, reap every worker,
  // and leave /dev/shm clean.
  ASSERT_EQ(::setenv("MPCSPAN_TEST_PEER_DIE_SHARD", "1", 1), 0);
  std::vector<pid_t> pids;
  {
    RoundEngine eng(
        EngineConfig{8, 1, 4, 1, 1, runtime::Transport::kShmRing},
        std::make_unique<MpcTopology>(32));
    const KernelId k = eng.registerKernel(
        ShmProbeKernel::kernelName(),
        [] { return std::make_unique<ShmProbeKernel>(); });
    // Fork the workers on a round that does not reach the fault hook.
    std::vector<std::vector<Message>> out(8);
    out[0].push_back({7, {1}});
    eng.exchange(std::move(out));
    pids = eng.shardBackend()->workerPids();
    ASSERT_EQ(pids.size(), 4u);
    EXPECT_THROW(eng.step(k), ShardError);
    EXPECT_THROW(eng.step(k), ShardError);  // the backend stays failed
  }
  ASSERT_EQ(::unsetenv("MPCSPAN_TEST_PEER_DIE_SHARD"), 0);
  for (const pid_t pid : pids) {
    int st = 0;
    EXPECT_EQ(::waitpid(pid, &st, WNOHANG), -1) << "worker leaked: " << pid;
    EXPECT_EQ(errno, ECHILD);
  }
  EXPECT_TRUE(shmDirClean());
}

// --- The ring transport itself, in-process on a tiny arena. ---

/// Builds one single-row section (src -> dst, the given payload).
void fillSection(std::vector<WireWriter>& sections,
                 std::vector<std::uint64_t>& counts, std::size_t peer,
                 std::size_t src, std::size_t dst,
                 const std::vector<Word>& pay) {
  sections[peer].row(src, dst, pay.data(), pay.size());
  counts[peer] = 1;
}

TEST(ShmRing, DirectExchangeRoundTripContiguousAndChunked) {
  // Worker 0 sends a small (in-place view) frame, worker 1 an oversized
  // one (5x the ring) — both directions complete over one 4 KiB ring pair
  // and parse to the exact rows that went in.
  constexpr std::size_t kRing = 4096;
  ShmArena arena(2, kRing);
  auto mesh = runtime::shard::makeMesh(2);
  const std::vector<Word> small{1, 2, 3};
  std::vector<Word> big(kRing * 5 / sizeof(Word));
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i * 11400714819323198485ull;

  std::vector<std::vector<std::vector<Message>>> got(
      2, std::vector<std::vector<Message>>(2));
  std::vector<std::exception_ptr> errors(2);
  std::vector<std::thread> threads;
  for (std::size_t self = 0; self < 2; ++self) {
    threads.emplace_back([&, self] {
      try {
        std::vector<WireWriter> sections(2);
        std::vector<std::uint64_t> counts(2, 0);
        fillSection(sections, counts, 1 - self, self, 1 - self,
                    self == 0 ? small : big);
        auto frames = runtime::shard::shmExchange(arena, mesh[self], self,
                                                  counts, sections);
        const std::uint64_t count = frames[1 - self].u64();
        ASSERT_EQ(count, 1u);
        mergeSectionRows(frames[1 - self], count, 1 - self, 2 - self, self,
                         self + 1, got[self]);
        arena.releaseInbound();
      } catch (...) {
        errors[self] = std::current_exception();
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (std::size_t self = 0; self < 2; ++self)
    if (errors[self]) std::rethrow_exception(errors[self]);
  ASSERT_EQ(got[1][0].size(), 1u);
  EXPECT_EQ(got[1][0][0].payload, small);
  ASSERT_EQ(got[0][1].size(), 1u);
  EXPECT_EQ(got[0][1][0].payload, big);
}

TEST(ShmRing, AbortRewindsProducedAndTheRingStaysUsable) {
  constexpr std::size_t kRing = 4096;
  ShmArena arena(2, kRing);
  auto mesh = runtime::shard::makeMesh(2);
  const std::vector<Word> pay{7, 8, 9};
  std::vector<WireWriter> sections(2);
  std::vector<std::uint64_t> counts(2, 0);
  fillSection(sections, counts, 1, 0, 1, pay);

  RingHdr& h = arena.hdr(0, 1);
  ASSERT_EQ(h.produced.load(), 0u);
  ShmSendState st =
      runtime::shard::beginShmSend(arena, 0, counts, sections, mesh[0]);
  EXPECT_GT(h.produced.load(), 0u);  // the frame was pre-written
  runtime::shard::abortShmSend(st);
  EXPECT_EQ(h.produced.load(), 0u);  // ...and rewound without a trace

  // The rewound ring carries the next (differently-sized) round cleanly.
  const std::vector<Word> pay2{42};
  std::vector<std::vector<std::vector<Message>>> got(
      2, std::vector<std::vector<Message>>(2));
  std::vector<std::exception_ptr> errors(2);
  std::vector<std::thread> threads;
  for (std::size_t self = 0; self < 2; ++self) {
    threads.emplace_back([&, self] {
      try {
        std::vector<WireWriter> s2(2);
        std::vector<std::uint64_t> c2(2, 0);
        fillSection(s2, c2, 1 - self, self, 1 - self, pay2);
        auto frames =
            runtime::shard::shmExchange(arena, mesh[self], self, c2, s2);
        const std::uint64_t count = frames[1 - self].u64();
        ASSERT_EQ(count, 1u);
        mergeSectionRows(frames[1 - self], count, 1 - self, 2 - self, self,
                         self + 1, got[self]);
        arena.releaseInbound();
      } catch (...) {
        errors[self] = std::current_exception();
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (std::size_t self = 0; self < 2; ++self)
    if (errors[self]) std::rethrow_exception(errors[self]);
  EXPECT_EQ(got[0][1][0].payload, pay2);
  EXPECT_EQ(got[1][0][0].payload, pay2);
}

TEST(ShmRing, CorruptLengthPrefixRejectedAsShardError) {
  // A garbage length prefix (beyond kMaxFrameBytes) planted in the inbound
  // ring must surface as ShardError on the very first pump — never chased
  // as a real frame length.
  constexpr std::size_t kRing = 4096;
  ShmArena arena(2, kRing);
  auto mesh = runtime::shard::makeMesh(2);
  {
    const std::uint64_t bad = kMaxFrameBytes + 1;
    std::memcpy(arena.data(1, 0), &bad, sizeof bad);
    arena.hdr(1, 0).produced.store(sizeof bad, std::memory_order_release);
  }
  std::vector<WireWriter> sections(2);
  std::vector<std::uint64_t> counts(2, 0);
  const std::vector<Word> pay{5};
  fillSection(sections, counts, 1, 0, 1, pay);
  EXPECT_THROW(
      runtime::shard::shmExchange(arena, mesh[0], 0, counts, sections),
      ShardError);

  // A sub-header length (< 8 bytes) is equally implausible.
  ShmArena arena2(2, kRing);
  {
    const std::uint64_t bad = 3;
    std::memcpy(arena2.data(1, 0), &bad, sizeof bad);
    arena2.hdr(1, 0).produced.store(sizeof bad, std::memory_order_release);
  }
  std::vector<WireWriter> s2(2);
  std::vector<std::uint64_t> c2(2, 0);
  fillSection(s2, c2, 1, 0, 1, pay);
  EXPECT_THROW(runtime::shard::shmExchange(arena2, mesh[0], 0, c2, s2),
               ShardError);
}

TEST(ShmRing, RingBytesEnvRoundsToPowerOfTwoWithinBounds) {
  ASSERT_EQ(::setenv("MPCSPAN_SHM_RING_BYTES", "5000", 1), 0);
  EXPECT_EQ(runtime::shard::defaultShmRingBytes(), 8192u);
  ASSERT_EQ(::setenv("MPCSPAN_SHM_RING_BYTES", "1", 1), 0);
  EXPECT_EQ(runtime::shard::defaultShmRingBytes(), 4096u);  // floor clamp
  ASSERT_EQ(::unsetenv("MPCSPAN_SHM_RING_BYTES"), 0);
  EXPECT_EQ(runtime::shard::defaultShmRingBytes(), std::size_t{1} << 20);
}

}  // namespace
}  // namespace mpcspan
