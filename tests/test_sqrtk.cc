#include "spanner/sqrtk.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/verify.hpp"

namespace mpcspan {
namespace {

TEST(SqrtK, IterationCountIsOrderSqrtK) {
  Rng rng(1);
  const Graph g = gnmRandom(400, 1600, rng, {}, true);
  for (std::uint32_t k : {4u, 9u, 16u, 25u, 49u}) {
    const auto r = buildSqrtKSpanner(g, {.k = k, .seed = 1});
    const auto t = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(k))));
    EXPECT_EQ(r.iterations, t + (t > 1 ? t - 1 : 1)) << "k=" << k;
    EXPECT_EQ(r.epochs, 2u);
    // Far fewer iterations than Baswana-Sen's k-1 once k is large.
    if (k >= 16) {
      EXPECT_LT(r.iterations, static_cast<std::size_t>(k - 1));
    }
  }
}

TEST(SqrtK, CertifiedStretchHolds) {
  Rng rng(2);
  const Graph g = gnmRandom(400, 2400, rng, {}, true);
  const auto r = buildSqrtKSpanner(g, {.k = 9, .seed = 2});
  const auto report = verifySpanner(g, r.edges, r.stretchBound);
  EXPECT_TRUE(report.spanning);
  EXPECT_EQ(report.violations, 0u) << "max " << report.maxEdgeStretch << " bound "
                                   << r.stretchBound;
}

TEST(SqrtK, StretchBoundIsLinearInK) {
  // Radius after epoch 1: t; after epoch 2: t + (t-1)(2t+1) ~ 2k.
  // So the certified bound grows linearly in k (times a constant), far
  // below the k^{log2 3} of the t=1 algorithm at large k.
  Rng rng(3);
  const Graph g = gnmRandom(200, 800, rng, {}, true);
  for (std::uint32_t k : {16u, 64u, 144u}) {
    const auto r = buildSqrtKSpanner(g, {.k = k, .seed = 3});
    EXPECT_LE(r.stretchBound, 40.0 * k + 60.0) << "k=" << k;
  }
}

TEST(SqrtK, WeightedAuditSampled) {
  Rng rng(4);
  const Graph g =
      gnmRandom(512, 4096, rng, {WeightModel::kExponential, 50.0}, true);
  const auto r = buildSqrtKSpanner(g, {.k = 16, .seed = 4});
  const auto report = verifySpanner(g, r.edges, r.stretchBound,
                                    {.maxEdgeChecks = 1500, .pairSources = 4});
  EXPECT_TRUE(report.spanning);
  EXPECT_EQ(report.violations, 0u);
}

TEST(SqrtK, SizeComparableToTheory) {
  Rng rng(5);
  const std::size_t n = 1024;
  const Graph g = gnmRandom(n, 12000, rng, {}, true);
  const std::uint32_t k = 9;
  const auto r = buildSqrtKSpanner(g, {.k = k, .seed = 5});
  const double bound = 6.0 * std::sqrt(static_cast<double>(k)) *
                       std::pow(static_cast<double>(n), 1.0 + 1.0 / k);
  EXPECT_LT(static_cast<double>(r.edges.size()), bound);
}

}  // namespace
}  // namespace mpcspan
