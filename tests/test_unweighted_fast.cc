#include "spanner/unweighted_fast.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "spanner/verify.hpp"

namespace mpcspan {
namespace {

TEST(UnweightedFast, RejectsWeightedGraphs) {
  Rng rng(1);
  const Graph g = gnmRandom(50, 150, rng, {WeightModel::kUniform, 5.0});
  EXPECT_THROW(buildUnweightedFastSpanner(g, {.k = 3, .gamma = 0.5, .seed = 1}),
               std::invalid_argument);
}

TEST(UnweightedFast, RejectsBadGamma) {
  Rng rng(2);
  const Graph g = gnmRandom(50, 150, rng);
  EXPECT_THROW(buildUnweightedFastSpanner(g, {.k = 3, .gamma = 0.0, .seed = 1}),
               std::invalid_argument);
  EXPECT_THROW(buildUnweightedFastSpanner(g, {.k = 3, .gamma = 1.5, .seed = 1}),
               std::invalid_argument);
}

TEST(UnweightedFast, KOneIsIdentity) {
  Rng rng(3);
  const Graph g = gnmRandom(40, 80, rng);
  const auto r = buildUnweightedFastSpanner(g, {.k = 1, .gamma = 0.5, .seed = 1});
  EXPECT_EQ(r.spanner.edges.size(), g.numEdges());
}

TEST(UnweightedFast, SparseDensePartitionCoversAll) {
  Rng rng(4);
  const Graph g = gnmRandom(600, 3000, rng, {}, true);
  const auto r = buildUnweightedFastSpanner(g, {.k = 2, .gamma = 0.4, .seed = 2});
  EXPECT_EQ(r.sparseVertices + r.denseVertices, g.numVertices());
  EXPECT_GT(r.ballCap, 0u);
}

TEST(UnweightedFast, DenseRandomGraphGetsDenseVertices) {
  // n=600 with avg degree 10 and a small cap: (8k)-hop balls explode, so
  // most vertices classify dense and the hitting-set machinery engages.
  Rng rng(5);
  const Graph g = gnmRandom(600, 3000, rng, {}, true);
  const auto r = buildUnweightedFastSpanner(g, {.k = 3, .gamma = 0.3, .seed = 3});
  EXPECT_GT(r.denseVertices, 0u);
  EXPECT_GT(r.hittingSetSize, 0u);
}

TEST(UnweightedFast, StretchWithinCertifiedBound) {
  Rng rng(6);
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Graph g = gnmRandom(500, 2500, rng, {}, true);
    const auto r =
        buildUnweightedFastSpanner(g, {.k = 3, .gamma = 0.5, .seed = seed});
    const auto report =
        verifySpanner(g, r.spanner.edges, r.spanner.stretchBound,
                      {.maxEdgeChecks = 1200, .pairSources = 4});
    EXPECT_TRUE(report.spanning) << "seed=" << seed;
    EXPECT_EQ(report.violations, 0u)
        << "seed=" << seed << " max=" << report.maxEdgeStretch << " bound="
        << r.spanner.stretchBound;
  }
}

TEST(UnweightedFast, PathGraphAllSparse) {
  // Bounded-degree path: every (4k)-ball has <= 8k+1 = 17 vertices, below
  // the cap n^{gamma/2} = 1000^{0.45} ~ 23, so every vertex is sparse and
  // the output is the Baswana-Sen spanner = all edges (a path is a tree).
  Rng rng(7);
  const Graph g = pathGraph(1000, rng);
  const auto r = buildUnweightedFastSpanner(g, {.k = 2, .gamma = 0.9, .seed = 4});
  EXPECT_EQ(r.denseVertices, 0u);
  EXPECT_EQ(r.spanner.edges.size(), g.numEdges());  // path = tree
}

TEST(UnweightedFast, StarGraphDenseCenter) {
  // A big star: the 1-ball of every vertex is the whole graph, so with a
  // small cap everyone is dense; the spanner must still span.
  Rng rng(8);
  const Graph g = starGraph(400, rng);
  const auto r = buildUnweightedFastSpanner(g, {.k = 2, .gamma = 0.3, .seed = 5});
  const auto report = verifySpanner(g, r.spanner.edges, r.spanner.stretchBound,
                                    {.maxEdgeChecks = 400, .pairSources = 2});
  EXPECT_TRUE(report.spanning);
  EXPECT_EQ(report.violations, 0u);
}

TEST(UnweightedFast, SizeWithinTheorem13Bound) {
  Rng rng(9);
  const std::size_t n = 800;
  const Graph g = gnmRandom(n, 8000, rng, {}, true);
  const std::uint32_t k = 4;
  const auto r = buildUnweightedFastSpanner(g, {.k = k, .gamma = 0.5, .seed = 6});
  // Theorem 1.3: O(n^{1+1/k} * k); slack 8 covers the forest and aux parts.
  const double bound =
      8.0 * k * std::pow(static_cast<double>(n), 1.0 + 1.0 / k);
  EXPECT_LT(static_cast<double>(r.spanner.edges.size()), bound);
}

TEST(UnweightedFast, RoundLedgerScalesWithLogK) {
  Rng rng(10);
  const Graph g = gnmRandom(400, 2000, rng, {}, true);
  const auto r2 = buildUnweightedFastSpanner(g, {.k = 2, .gamma = 0.5, .seed = 7});
  const auto r16 = buildUnweightedFastSpanner(g, {.k = 16, .gamma = 0.5, .seed = 7});
  const long e2 = r2.spanner.cost.invocations(Prim::kExponentiation);
  const long e16 = r16.spanner.cost.invocations(Prim::kExponentiation);
  // Exponentiation steps = ceil(log2(4k+1)): 4 for k=2, 7 for k=16.
  EXPECT_EQ(e2, 4);
  EXPECT_EQ(e16, 7);
}

TEST(UnweightedFast, DeterministicGivenSeed) {
  Rng rng(11);
  const Graph g = gnmRandom(300, 1500, rng, {}, true);
  const auto a = buildUnweightedFastSpanner(g, {.k = 3, .gamma = 0.4, .seed = 9});
  const auto b = buildUnweightedFastSpanner(g, {.k = 3, .gamma = 0.4, .seed = 9});
  EXPECT_EQ(a.spanner.edges, b.spanner.edges);
  EXPECT_EQ(a.hittingSetSize, b.hittingSetSize);
}

}  // namespace
}  // namespace mpcspan
