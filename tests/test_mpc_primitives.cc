#include "mpc/primitives.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "util/rng.hpp"

namespace mpcspan {
namespace {

struct KV {
  std::uint64_t key;
  double weight;
  std::uint32_t payload;
};

// Stateless orderings: the primitives run as registered kernels, so these
// cross into the shard workers by type (capturing lambdas are rejected at
// compile time).
struct KVKey {
  std::uint64_t operator()(const KV& kv) const { return kv.key; }
};
struct KVBetter {
  bool operator()(const KV& a, const KV& b) const {
    return a.weight < b.weight ||
           (a.weight == b.weight && a.payload < b.payload);
  }
};
struct KVByKey {
  // Exercises the flat-key route path (detail::PackedKeyWord) in tests.
  static constexpr std::size_t kPackedKeyWord = 0;
  bool operator()(const KV& a, const KV& b) const {
    if (a.key != b.key) return a.key < b.key;
    return KVBetter{}(a, b);
  }
};
struct KVWeightBetter {
  bool operator()(const KV& a, const KV& b) const { return a.weight < b.weight; }
};

TEST(PackUnpack, RoundTrips) {
  std::vector<KV> items{{1, 2.5, 3}, {4, 5.5, 6}};
  const auto words = packItems(items.data(), items.size());
  const auto back = unpackItems<KV>(words);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[1].key, 4u);
  EXPECT_DOUBLE_EQ(back[0].weight, 2.5);
  EXPECT_EQ(back[1].payload, 6u);
}

TEST(DistVector, DistributesWithinCapacity) {
  MpcSimulator sim(MpcConfig{4, 64});
  std::vector<std::uint64_t> data(100);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = i;
  DistVector<std::uint64_t> dv(sim, data);
  EXPECT_EQ(dv.size(), 100u);
  for (const auto& block : dv.blocksHostSide())
    EXPECT_LE(block.size(), sim.wordsPerMachine() / 2);
  EXPECT_EQ(dv.collectHostSide(), data);
}

TEST(DistVector, ThrowsWhenClusterTooSmall) {
  MpcSimulator sim(MpcConfig{2, 8});
  std::vector<std::uint64_t> data(100, 1);
  EXPECT_THROW((DistVector<std::uint64_t>(sim, data)), CapacityError);
}

TEST(TreeBroadcast, AllMachinesWithinLogRounds) {
  MpcSimulator sim(MpcConfig{16, 64});
  const std::size_t rounds = treeBroadcastWords(sim, {1, 2, 3});
  // branching = 64/3 = 21 >= 16, so one round suffices.
  EXPECT_EQ(rounds, 1u);
  EXPECT_EQ(sim.rounds(), 1u);
}

TEST(TreeBroadcast, LargePayloadNeedsMoreRounds) {
  MpcSimulator sim(MpcConfig{27, 8});
  // branching B = max(2, 8/4) = 2; holders grow by (1+B)x per round, so
  // 27 machines need ceil(log3 27) = 3 rounds.
  const std::size_t rounds = treeBroadcastWords(sim, {1, 2, 3, 4});
  EXPECT_EQ(rounds, 3u);
  EXPECT_EQ(sim.rounds(), 3u);
}

TEST(PrefixCounts, ComputesExclusivePrefix) {
  MpcSimulator sim(MpcConfig{4, 32});
  const auto prefix = prefixCounts(sim, {5, 3, 0, 7});
  EXPECT_EQ(prefix, (std::vector<std::size_t>{0, 5, 8, 8}));
  EXPECT_EQ(sim.rounds(), 2u);
}

TEST(PrefixCounts, SingleMachineIsFree) {
  MpcSimulator sim(MpcConfig{1, 32});
  EXPECT_EQ(prefixCounts(sim, {9}), (std::vector<std::size_t>{0}));
  EXPECT_EQ(sim.rounds(), 0u);
}

class DistSortTest : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(DistSortTest, MatchesStdSort) {
  const auto [numMachines, n] = GetParam();
  MpcSimulator sim(MpcConfig{numMachines, std::max<std::size_t>(64, 4 * n / numMachines)});
  Rng rng(n * 31 + numMachines);
  std::vector<std::uint64_t> data(n);
  for (auto& x : data) x = rng.next(1000);
  DistVector<std::uint64_t> dv(sim, data);
  distSort(dv, std::less<>());

  std::vector<std::uint64_t> expected = data;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(dv.collectHostSide(), expected);

  // Blocks themselves are globally ordered.
  std::uint64_t prev = 0;
  for (const auto& block : dv.blocksHostSide())
    for (std::uint64_t x : block) {
      EXPECT_GE(x, prev);
      prev = x;
    }
  // O(1/gamma)-round budget: sample + broadcast + route.
  EXPECT_LE(sim.rounds(), 8u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, DistSortTest,
    ::testing::Values(std::make_tuple(1u, 50u), std::make_tuple(4u, 200u),
                      std::make_tuple(8u, 1000u), std::make_tuple(16u, 4000u),
                      std::make_tuple(32u, 10000u)),
    [](const auto& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST(SegmentedMin, MatchesReferenceGroupBy) {
  Rng rng(77);
  const std::size_t n = 3000;
  std::vector<KV> data(n);
  for (std::size_t i = 0; i < n; ++i)
    data[i] = KV{rng.next(40), 1.0 + rng.uniform() * 9.0,
                 static_cast<std::uint32_t>(i)};

  MpcSimulator sim(MpcConfig{8, 4096});
  DistVector<KV> dv(sim, data);
  distSort(dv, KVByKey{});
  const std::vector<KV> reduced = segmentedMinSorted(dv, KVKey{}, KVBetter{});

  // Reference group-by-min.
  std::map<std::uint64_t, KV> ref;
  for (const KV& kv : data) {
    auto [it, inserted] = ref.try_emplace(kv.key, kv);
    if (!inserted && KVBetter{}(kv, it->second)) it->second = kv;
  }
  ASSERT_EQ(reduced.size(), ref.size());
  for (const KV& kv : reduced) {
    const KV& want = ref.at(kv.key);
    EXPECT_DOUBLE_EQ(kv.weight, want.weight);
    EXPECT_EQ(kv.payload, want.payload);
  }
}

TEST(SegmentedMin, SingleKeySpanningAllMachines) {
  const std::size_t n = 512;
  std::vector<KV> data(n);
  for (std::size_t i = 0; i < n; ++i)
    data[i] = KV{7, static_cast<double>(n - i), static_cast<std::uint32_t>(i)};
  MpcSimulator sim(MpcConfig{8, 512});
  DistVector<KV> dv(sim, data);
  // Data is one key; already "sorted by key".
  const std::vector<KV> reduced =
      segmentedMinSorted(dv, KVKey{}, KVWeightBetter{});
  ASSERT_EQ(reduced.size(), 1u);
  EXPECT_DOUBLE_EQ(reduced[0].weight, 1.0);
}

TEST(DistVectorSharded, SortAndSegMinOnWorkerOwnedBlocksMatchInProcess) {
  // The whole primitive pipeline — block storage, local sort, sampling,
  // splitter broadcast, the all-to-all route, the boundary fix-up — runs
  // against worker-owned state when the simulator is sharded; the result,
  // the round count, and the traffic ledger must match the in-process
  // engine bit for bit.
  Rng rng(99);
  const std::size_t n = 4000;
  std::vector<KV> data(n);
  for (std::size_t i = 0; i < n; ++i)
    data[i] = KV{rng.next(64), 1.0 + rng.uniform() * 9.0,
                 static_cast<std::uint32_t>(i)};

  struct Run {
    std::vector<std::vector<KV>> blocks;
    std::vector<KV> reduced;
    std::size_t rounds, words;
  };
  auto run = [&](std::size_t threads, std::size_t shards) {
    MpcSimulator sim(MpcConfig{16, 4096}, threads, shards);
    EXPECT_EQ(sim.numShards(), shards);
    DistVector<KV> dv(sim, data);
    distSort(dv, KVByKey{});
    Run r;
    r.reduced = segmentedMinSorted(dv, KVKey{}, KVBetter{});
    r.blocks = dv.blocksHostSide();
    r.rounds = sim.rounds();
    r.words = sim.totalWordsSent();
    return r;
  };
  const Run base = run(1, 1);
  for (std::size_t shards : {2u, 4u, 8u}) {
    const Run sharded = run(2, shards);
    EXPECT_EQ(sharded.rounds, base.rounds) << shards << " shards";
    EXPECT_EQ(sharded.words, base.words) << shards << " shards";
    ASSERT_EQ(sharded.blocks.size(), base.blocks.size());
    for (std::size_t m = 0; m < base.blocks.size(); ++m) {
      ASSERT_EQ(sharded.blocks[m].size(), base.blocks[m].size());
      for (std::size_t i = 0; i < base.blocks[m].size(); ++i) {
        EXPECT_EQ(sharded.blocks[m][i].key, base.blocks[m][i].key);
        EXPECT_EQ(sharded.blocks[m][i].payload, base.blocks[m][i].payload);
      }
    }
    ASSERT_EQ(sharded.reduced.size(), base.reduced.size());
    for (std::size_t i = 0; i < base.reduced.size(); ++i) {
      EXPECT_EQ(sharded.reduced[i].key, base.reduced[i].key);
      EXPECT_EQ(sharded.reduced[i].payload, base.reduced[i].payload);
    }
  }
}

TEST(SegmentedMin, EmptyInput) {
  MpcSimulator sim(MpcConfig{4, 64});
  DistVector<KV> dv(sim, {});
  EXPECT_TRUE(segmentedMinSorted(dv, KVKey{}, KVWeightBetter{}).empty());
}

}  // namespace
}  // namespace mpcspan
