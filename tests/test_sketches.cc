#include "apsp/sketches.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.hpp"
#include "graph/distance.hpp"
#include "graph/generators.hpp"
#include "spanner/tradeoff.hpp"

namespace mpcspan {
namespace {

class SketchStretch
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {};

TEST_P(SketchStretch, QueriesWithin2kMinus1) {
  const auto [k, seed] = GetParam();
  Rng rng(seed * 13 + k);
  const Graph g = gnmRandom(300, 1800, rng, {WeightModel::kUniform, 20.0}, true);
  const DistanceSketches sk(g, {.k = k, .seed = seed});
  Rng pick(seed);
  for (int q = 0; q < 40; ++q) {
    const auto u = static_cast<VertexId>(pick.next(g.numVertices()));
    const auto v = static_cast<VertexId>(pick.next(g.numVertices()));
    const Weight exact = dijkstraPair(g, u, v);
    const Weight est = sk.query(u, v);
    if (exact == kInfDist) {
      EXPECT_EQ(est, kInfDist);
      continue;
    }
    EXPECT_GE(est + 1e-9, exact) << "u=" << u << " v=" << v;
    EXPECT_LE(est, sk.stretchBound() * exact + 1e-9)
        << "u=" << u << " v=" << v << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KSeeds, SketchStretch,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values<std::uint64_t>(1, 2)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Sketches, SelfDistanceIsZero) {
  Rng rng(3);
  const Graph g = gnmRandom(100, 400, rng, {}, true);
  const DistanceSketches sk(g, {.k = 3, .seed = 1});
  for (VertexId v : {0u, 5u, 99u}) EXPECT_DOUBLE_EQ(sk.query(v, v), 0.0);
}

TEST(Sketches, DisconnectedPairsReturnInfinity) {
  GraphBuilder b(6);
  b.addEdge(0, 1, 1.0);
  b.addEdge(1, 2, 1.0);
  b.addEdge(3, 4, 1.0);
  const Graph g = b.build();
  const DistanceSketches sk(g, {.k = 3, .seed = 2});
  EXPECT_EQ(sk.query(0, 4), kInfDist);
  EXPECT_EQ(sk.query(0, 5), kInfDist);
  EXPECT_NE(sk.query(0, 2), kInfDist);
}

TEST(Sketches, KOneIsExactAPSPViaBunches) {
  // k=1: A_0 = V, every bunch holds exact distances to everyone.
  Rng rng(4);
  const Graph g = gnmRandom(80, 320, rng, {WeightModel::kUniform, 5.0}, true);
  const DistanceSketches sk(g, {.k = 1, .seed = 3});
  const auto exact = dijkstra(g, 7);
  for (VertexId v = 0; v < g.numVertices(); ++v)
    EXPECT_NEAR(sk.query(7, v), exact[v], 1e-9);
}

TEST(Sketches, BunchSizeNearTheory) {
  Rng rng(5);
  const std::size_t n = 1000;
  const Graph g = gnmRandom(n, 8000, rng, {WeightModel::kUniform, 9.0}, true);
  const std::uint32_t k = 3;
  const DistanceSketches sk(g, {.k = k, .seed = 4});
  // E[bunch total] = O(k n^{1+1/k}); generous constant 6.
  const double bound = 6.0 * k * std::pow(double(n), 1.0 + 1.0 / double(k));
  EXPECT_LT(static_cast<double>(sk.totalBunchEntries()), bound);
  // Levels shrink geometrically.
  ASSERT_EQ(sk.levelSizes().size(), k);
  EXPECT_EQ(sk.levelSizes()[0], n);
  EXPECT_LT(sk.levelSizes()[2], sk.levelSizes()[0]);
}

TEST(Sketches, SpannerAcceleratedVariantComposesStretch) {
  Rng rng(6);
  const Graph g = gnmRandom(600, 9000, rng, {WeightModel::kUniform, 12.0}, true);
  TradeoffParams tp;
  tp.k = 4;
  tp.t = 2;
  tp.seed = 5;
  const SpannerResult spanner = buildTradeoffSpanner(g, tp);
  const SketchParams sp{.k = 3, .seed = 6};
  const SpannerSketches ss = buildSketchesOnSpanner(g, spanner, sp);
  EXPECT_DOUBLE_EQ(ss.composedStretchBound, 5.0 * spanner.stretchBound);

  Rng pick(7);
  for (int q = 0; q < 30; ++q) {
    const auto u = static_cast<VertexId>(pick.next(g.numVertices()));
    const auto v = static_cast<VertexId>(pick.next(g.numVertices()));
    const Weight exact = dijkstraPair(g, u, v);
    if (exact == kInfDist || exact == 0) continue;
    const Weight est = ss.sketches.query(u, v);
    EXPECT_GE(est + 1e-9, exact);
    EXPECT_LE(est, ss.composedStretchBound * exact + 1e-9);
  }
}

TEST(Sketches, SpannerCutsPreprocessingWork) {
  // The [DN19] point: preprocessing cost scales with the edge count, so a
  // dense graph's sketches are much cheaper on its spanner.
  Rng rng(8);
  const Graph g = gnmRandom(800, 40000, rng, {WeightModel::kUniform, 10.0}, true);
  TradeoffParams tp;
  tp.k = 6;
  tp.t = 0;
  tp.seed = 9;
  const SpannerResult spanner = buildTradeoffSpanner(g, tp);
  ASSERT_LT(spanner.edges.size(), g.numEdges() / 3);

  const SketchParams sp{.k = 3, .seed = 10};
  const DistanceSketches direct(g, sp);
  const SpannerSketches accel = buildSketchesOnSpanner(g, spanner, sp);
  EXPECT_LT(accel.sketches.preprocessingRelaxations(),
            direct.preprocessingRelaxations());
}

}  // namespace
}  // namespace mpcspan
