// Direct unit tests of the Theorem 8.1 repetition policy, including the
// fallback path (impossible envelopes) that the integration suites never
// reach, and the Section 2.4 streaming-pass accounting.
#include <gtest/gtest.h>

#include "cclique/spanner_cc.hpp"
#include "graph/generators.hpp"
#include "spanner/tradeoff.hpp"
#include "spanner/verify.hpp"

namespace mpcspan {
namespace {

TEST(RepetitionPolicy, ImpossibleEnvelopesFallBackGracefully) {
  // Zero slack can never be met on a non-trivial instance: the policy must
  // exhaust its draws, count the fallback, and still return a usable
  // sampling (the minimum-edges draw) so the algorithm terminates.
  Rng rng(1);
  const Graph g = gnmRandom(300, 1500, rng, {WeightModel::kUniform, 8.0}, true);
  RepetitionThresholds impossible;
  impossible.clusterSlack = 0.0;
  impossible.edgeSlack = 0.0;
  impossible.logTerm = 0.0;
  RepetitionSamplingPolicy policy(5, g.numVertices(), impossible);

  TradeoffParams p;
  p.k = 6;
  p.t = 2;
  p.seed = 5;
  p.policy = &policy;
  const SpannerResult r = buildTradeoffSpanner(g, p);
  EXPECT_GT(policy.fallbacks(), 0l);
  EXPECT_EQ(r.repetition.iterationsWithRetry, policy.fallbacks());
  // Output is still a valid spanner.
  const auto report = verifySpanner(g, r.edges, r.stretchBound,
                                    {.maxEdgeChecks = 800, .pairSources = 2});
  EXPECT_TRUE(report.spanning);
  EXPECT_EQ(report.violations, 0u);
}

TEST(RepetitionPolicy, GenerousEnvelopesAcceptFirstDraw) {
  Rng rng(2);
  const Graph g = gnmRandom(300, 1500, rng, {}, true);
  RepetitionThresholds loose;
  loose.clusterSlack = 100.0;
  loose.edgeSlack = 100.0;
  loose.logTerm = 100.0;
  RepetitionSamplingPolicy policy(7, g.numVertices(), loose);
  TradeoffParams p;
  p.k = 6;
  p.t = 2;
  p.seed = 7;
  p.policy = &policy;
  const SpannerResult r = buildTradeoffSpanner(g, p);
  EXPECT_EQ(policy.fallbacks(), 0l);
  EXPECT_EQ(r.repetition.iterationsWithRetry, 0l);
  // Exactly one draw per iteration.
  EXPECT_EQ(r.repetition.totalDraws, static_cast<long>(r.iterations));
}

TEST(RepetitionPolicy, AcceptedDrawMatchesPlainRunWhenFirstDrawGood) {
  // With generous envelopes the policy commits draw #0 of a *different*
  // hash stream than the default policy, so outputs may differ — but both
  // must satisfy the same certified bound on the same graph.
  Rng rng(3);
  const Graph g = gnmRandom(250, 1250, rng, {WeightModel::kUniform, 6.0}, true);
  const auto plain = buildCcSpanner(g, {.k = 8, .t = 2, .seed = 11});
  TradeoffParams p;
  p.k = 8;
  p.t = 2;
  p.seed = 11;
  const auto engine = buildTradeoffSpanner(g, p);
  EXPECT_DOUBLE_EQ(plain.stretchBound, engine.stretchBound);
}

TEST(StreamingPasses, MatchSection24Claim) {
  // Section 2.4: the t=1 algorithm gives a log k-pass dynamic-stream
  // spanner (one pass per communication round).
  Rng rng(4);
  const Graph g = gnmRandom(200, 1000, rng, {}, true);
  TradeoffParams p;
  p.k = 16;
  p.t = 1;
  p.seed = 13;
  const auto r = buildTradeoffSpanner(g, p);
  EXPECT_EQ(r.cost.streamingPasses(), r.cost.nearLinearRounds());
  // 4 epochs x (sample+findmin+merge) + 4 contractions + phase 2.
  EXPECT_LE(r.cost.streamingPasses(), 3 * 4 + 4 + 1);
}

}  // namespace
}  // namespace mpcspan
