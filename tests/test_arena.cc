// The per-worker Arena allocator, its WordBuf surface, Payload's borrowed
// (zero-copy) mode, and the simd:: passes that the arena-backed contiguous
// layout enables. The simd tests exercise whichever path the build compiled
// (scalar on baseline, AVX2 under -mavx2 / MPCSPAN_NATIVE) against the
// obviously-correct scalar definition — the two must be bit-identical.
#include "runtime/arena.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "runtime/simd.hpp"
#include "runtime/types.hpp"
#include "util/rng.hpp"

namespace mpcspan {
namespace {

using runtime::Arena;
using runtime::Payload;
using runtime::WordBuf;

TEST(Arena, RoundCapacityIsPowerOfTwoWithCacheLineFloor) {
  EXPECT_EQ(Arena::roundCapacity(0), Arena::kMinRunWords);
  EXPECT_EQ(Arena::roundCapacity(1), Arena::kMinRunWords);
  EXPECT_EQ(Arena::roundCapacity(8), 8u);
  EXPECT_EQ(Arena::roundCapacity(9), 16u);
  EXPECT_EQ(Arena::roundCapacity(1024), 1024u);
  EXPECT_EQ(Arena::roundCapacity(1025), 2048u);
}

TEST(Arena, RecycleReusesTheExactRun) {
  Arena a;
  Word* p = a.allocate(100);  // lands in the 128-word class
  ASSERT_NE(p, nullptr);
  p[0] = 1;
  p[127] = 2;  // the full rounded capacity is writable
  a.recycle(p, Arena::roundCapacity(100));
  // Same size class -> the freed run comes straight back.
  Word* q = a.allocate(65);
  EXPECT_EQ(q, p);
  a.recycle(q, Arena::roundCapacity(65));
}

TEST(Arena, SteadyStateChurnReservesNoNewMemory) {
  Arena a;
  std::vector<Word*> runs;
  for (int i = 0; i < 64; ++i) runs.push_back(a.allocate(200));
  for (Word* p : runs) a.recycle(p, Arena::roundCapacity(200));
  const std::size_t reserved = a.reservedWords();
  for (int round = 0; round < 100; ++round) {
    runs.clear();
    for (int i = 0; i < 64; ++i) runs.push_back(a.allocate(200));
    for (Word* p : runs) a.recycle(p, Arena::roundCapacity(200));
  }
  EXPECT_EQ(a.reservedWords(), reserved);
}

TEST(Arena, ResetRewindsWithoutReleasingChunks) {
  Arena a;
  for (int i = 0; i < 32; ++i) (void)a.allocate(1000);
  const std::size_t reserved = a.reservedWords();
  a.reset();
  EXPECT_EQ(a.reservedWords(), reserved);
  // Post-reset allocations reuse the rewound chunks.
  for (int i = 0; i < 32; ++i) ASSERT_NE(a.allocate(1000), nullptr);
  EXPECT_EQ(a.reservedWords(), reserved);
}

TEST(Arena, OversizedRequestsGetTheirOwnChunk) {
  Arena a(/*minChunkWords=*/1 << 10);
  Word* big = a.allocate(1 << 14);  // far beyond the chunk size
  ASSERT_NE(big, nullptr);
  big[0] = 7;
  big[(1 << 14) - 1] = 8;
  a.recycle(big, Arena::roundCapacity(1 << 14));
  EXPECT_EQ(a.allocate(1 << 14), big);
}

TEST(WordBuf, VectorSurfaceOnArenaMemory) {
  Arena a;
  WordBuf b(&a);
  EXPECT_TRUE(b.empty());
  for (Word w = 0; w < 100; ++w) b.push_back(w * 3);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b[99], 297u);
  b.resize(200);  // grows zero-filled
  EXPECT_EQ(b[150], 0u);
  b.resize(4);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ((b = std::vector<Word>{9, 8, 7}).toVector(),
            (std::vector<Word>{9, 8, 7}));

  WordBuf c(&a);
  c = b;  // copy keeps both alive and equal
  EXPECT_EQ(b, c);
  WordBuf d(std::move(c));
  EXPECT_EQ(b, d);
  EXPECT_TRUE(c.empty());  // NOLINT(bugprone-use-after-move): spec'd empty
}

TEST(WordBuf, GrowthRecyclesTheOldRunToTheArena) {
  Arena a;
  WordBuf b(&a);
  b.resize(100);  // one 128-word run
  const Word* before = b.data();
  b.resize(1000);  // regrow: the 128-word run goes back to the arena
  EXPECT_NE(b.data(), before);
  EXPECT_EQ(a.allocate(100), before);  // ...and is immediately reusable
}

TEST(WordBuf, StandaloneHeapModeStillWorks) {
  WordBuf b;  // no arena attached
  for (Word w = 0; w < 1000; ++w) b.push_back(w);
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_EQ(b[999], 999u);
}

TEST(Payload, BorrowedWrapsWithoutCopyAndCopiesEscapeTheBorrow) {
  std::vector<Word> backing{10, 20, 30, 40};
  Payload p = Payload::borrowed(backing.data(), backing.size());
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.data(), backing.data());  // zero-copy: same words
  backing[2] = 77;
  EXPECT_EQ(p[2], 77u);  // the borrow sees the owner's writes

  Payload copy = p;  // copies deep-copy: they outlive the owner
  EXPECT_NE(copy.data(), backing.data());
  backing[0] = 999;
  EXPECT_EQ(copy[0], 10u);
  EXPECT_EQ(copy.size(), 4u);

  // Single words go inline even when "borrowed" — no dangling possible.
  Payload one = Payload::borrowed(backing.data(), 1);
  EXPECT_NE(one.data(), backing.data());
  EXPECT_EQ(one.front(), 999u);
}

// --- simd passes: compiled path vs the scalar definition. ---

TEST(Simd, GatherStrideMatchesScalar) {
  Rng rng(7);
  std::vector<Word> base(4096);
  for (Word& w : base) w = rng();
  for (const std::size_t stride : {1u, 2u, 3u, 5u, 8u}) {
    for (const std::size_t offset :
         {std::size_t{0}, std::size_t{1}, std::size_t{stride - 1}}) {
      const std::size_t count = (base.size() - offset) / stride;
      std::vector<Word> got(count), want(count);
      runtime::simd::gatherStride(base.data(), offset, stride, count,
                                  got.data());
      for (std::size_t i = 0; i < count; ++i)
        want[i] = base[i * stride + offset];
      EXPECT_EQ(got, want) << "stride " << stride << " offset " << offset;
    }
  }
}

TEST(Simd, RunStartsMatchesScalarOnAdversarialKeys) {
  Rng rng(11);
  for (const std::size_t n : {0u, 1u, 3u, 4u, 5u, 64u, 1000u}) {
    // Few distinct keys -> runs of every length, including across the
    // 4-lane vector boundary.
    std::vector<Word> keys(n);
    for (Word& k : keys) k = rng() % 5;
    std::sort(keys.begin(), keys.end());
    std::vector<std::uint32_t> got, want;
    runtime::simd::runStarts(keys.data(), n, got);
    for (std::size_t i = 0; i < n; ++i)
      if (i == 0 || keys[i] != keys[i - 1])
        want.push_back(static_cast<std::uint32_t>(i));
    EXPECT_EQ(got, want) << "n " << n;
  }
}

TEST(Simd, BoundsMatchStdAlgorithmsIncludingUnsignedExtremes) {
  // Keys spanning the sign bit: the AVX2 path's bias trick must agree with
  // std::upper_bound / lower_bound on unsigned order.
  std::vector<Word> keys{0, 1, 5, 5, 5, 9, 1ull << 62, ~Word{0} - 1,
                         ~Word{0}, ~Word{0}};
  for (const Word probe :
       {Word{0}, Word{4}, Word{5}, Word{6}, Word{10}, Word{1} << 62,
        ~Word{0} - 1, ~Word{0}}) {
    const auto ub = static_cast<std::size_t>(
        std::upper_bound(keys.begin(), keys.end(), probe) - keys.begin());
    const auto lb = static_cast<std::size_t>(
        std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin());
    EXPECT_EQ(runtime::simd::upperBoundFrom(keys.data(), 0, keys.size(), probe),
              ub)
        << "probe " << probe;
    EXPECT_EQ(runtime::simd::lowerBoundFrom(keys.data(), 0, keys.size(), probe),
              lb)
        << "probe " << probe;
  }
  // Resumable scan: starting from a prior bound returns the same index.
  EXPECT_EQ(runtime::simd::upperBoundFrom(keys.data(), 5, keys.size(), Word{9}),
            6u);
}

}  // namespace
}  // namespace mpcspan
