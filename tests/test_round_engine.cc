// The round-engine runtime: topology enforcement, deterministic delivery,
// and — the core guarantee — bit-identical results for every thread count
// (rounds, traffic totals, and message contents).
#include "runtime/round_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>

#include "pram/pram.hpp"
#include "runtime/thread_pool.hpp"

namespace mpcspan {
namespace {

using runtime::CliqueTopology;
using runtime::Delivery;
using runtime::EngineConfig;
using runtime::Message;
using runtime::MpcTopology;
using runtime::PramTopology;
using runtime::RoundEngine;
using runtime::ThreadPool;
using runtime::Topology;

RoundEngine makeMpcEngine(std::size_t machines, std::size_t capacity,
                          std::size_t threads) {
  return RoundEngine(EngineConfig{machines, threads},
                     std::make_unique<MpcTopology>(capacity));
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.numThreads(), 4u);
  std::vector<int> hits(100000, 0);
  pool.parallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
}

TEST(ThreadPool, ParallelForChunksMatchesSerialChunking) {
  ThreadPool pool(3);
  std::vector<std::pair<std::size_t, std::size_t>> chunks(4);
  pool.parallelForChunks(10, 3, [&](std::size_t b, std::size_t e) {
    chunks[b / 3] = {b, e};
  });
  EXPECT_EQ(chunks[0], (std::pair<std::size_t, std::size_t>{0, 3}));
  EXPECT_EQ(chunks[3], (std::pair<std::size_t, std::size_t>{9, 10}));
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallelFor(1000,
                                [](std::size_t i) {
                                  if (i == 617) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool survives an exceptional job.
  std::atomic<int> count{0};
  pool.parallelFor(64, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, EnvDefaultIsAtLeastOne) {
  EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

TEST(RoundEngine, RejectsBadConfig) {
  EXPECT_THROW(makeMpcEngine(0, 8, 1), std::invalid_argument);
  EXPECT_THROW(RoundEngine(EngineConfig{2, 1}, nullptr), std::invalid_argument);
}

TEST(RoundEngine, DeliversInSourceOrder) {
  RoundEngine eng = makeMpcEngine(4, 16, 2);
  std::vector<std::vector<Message>> out(4);
  out[3].push_back({1, {30}});
  out[0].push_back({1, {10, 11}});
  out[0].push_back({1, {12}});
  out[2].push_back({1, {20}});
  const auto inbox = eng.exchange(std::move(out));
  ASSERT_EQ(inbox[1].size(), 4u);
  EXPECT_EQ(inbox[1][0].src, 0u);
  EXPECT_EQ(inbox[1][0].payload, (std::vector<Word>{10, 11}));
  EXPECT_EQ(inbox[1][1].payload, (std::vector<Word>{12}));
  EXPECT_EQ(inbox[1][2].src, 2u);
  EXPECT_EQ(inbox[1][3].src, 3u);
  EXPECT_EQ(eng.rounds(), 1u);
  EXPECT_EQ(eng.totalWordsSent(), 5u);
  EXPECT_EQ(eng.maxRoundWords(), 5u);
}

TEST(RoundEngine, MpcTopologyEnforcesBudgets) {
  RoundEngine eng = makeMpcEngine(2, 4, 1);
  std::vector<std::vector<Message>> out(2);
  out[0].push_back({1, {1, 2, 3, 4, 5}});
  EXPECT_THROW(eng.exchange(std::move(out)), CapacityError);
}

TEST(RoundEngine, CliqueTopologyEnforcesPairLimit) {
  RoundEngine eng(EngineConfig{3, 1}, std::make_unique<CliqueTopology>());
  std::vector<std::vector<Message>> twice(3);
  twice[0].push_back({1, {7}});
  twice[0].push_back({1, {8}});
  EXPECT_THROW(eng.exchange(std::move(twice)), CapacityError);
  std::vector<std::vector<Message>> fat(3);
  fat[0].push_back({1, {7, 8}});
  EXPECT_THROW(eng.exchange(std::move(fat)), CapacityError);
}

TEST(RoundEngine, PramTopologyResolvesPriorityCrcw) {
  RoundEngine eng(EngineConfig{4, 2}, std::make_unique<PramTopology>());
  EXPECT_EQ(eng.topology().mode(), Topology::Mode::kPriorityWrite);
  std::vector<std::vector<Message>> out(4);
  out[3].push_back({0, {33}});
  out[1].push_back({0, {11}});
  out[2].push_back({0, {22}});
  const auto cells = eng.exchange(std::move(out));
  // Concurrent writes to cell 0: the lowest writer id wins, deterministically.
  ASSERT_EQ(cells[0].size(), 1u);
  EXPECT_EQ(cells[0][0].src, 1u);
  EXPECT_EQ(cells[0][0].payload, (std::vector<Word>{11}));
  // All attempted writes count as traffic (work), only one landed.
  EXPECT_EQ(eng.totalWordsSent(), 3u);
}

TEST(RoundEngine, StepRunsMachineCentricRounds) {
  // Ring token passing: machine m forwards (token + 1) to m+1 each round.
  RoundEngine eng = makeMpcEngine(8, 8, 3);
  eng.step([](std::size_t m, const std::vector<Delivery>&) {
    std::vector<Message> out;
    if (m == 0) out.push_back({1, {100}});
    return out;
  });
  for (int r = 0; r < 6; ++r) {
    eng.step([&](std::size_t m, const std::vector<Delivery>& in) {
      std::vector<Message> out;
      if (!in.empty())
        out.push_back({(m + 1) % eng.numMachines(), {in[0].payload[0] + 1}});
      return out;
    });
  }
  EXPECT_EQ(eng.inbox(7).size(), 1u);
  EXPECT_EQ(eng.inbox(7)[0].payload[0], 106u);
  EXPECT_EQ(eng.rounds(), 7u);
}

/// Fixed deterministic all-to-all workload; returns every inbox of every
/// round flattened, plus the ledger, for cross-thread-count comparison.
struct WorkloadTrace {
  std::vector<Word> flat;
  std::size_t rounds = 0;
  std::size_t words = 0;
  std::size_t maxRound = 0;

  friend bool operator==(const WorkloadTrace&, const WorkloadTrace&) = default;
};

WorkloadTrace runWorkload(std::size_t threads) {
  const std::size_t p = 16;
  RoundEngine eng = makeMpcEngine(p, 4 * p, threads);
  WorkloadTrace trace;
  std::uint64_t h = 42;
  for (int round = 0; round < 10; ++round) {
    std::vector<std::vector<Message>> out(p);
    for (std::size_t src = 0; src < p; ++src)
      for (std::size_t k = 0; k < 3; ++k) {
        h = h * 6364136223846793005ULL + 1442695040888963407ULL;
        out[src].push_back({(src + 1 + (h >> 33) % (p - 1)) % p, {h, h ^ src}});
      }
    const auto inbox = eng.exchange(std::move(out));
    for (const auto& deliveries : inbox)
      for (const Delivery& d : deliveries) {
        trace.flat.push_back(d.src);
        trace.flat.insert(trace.flat.end(), d.payload.begin(), d.payload.end());
      }
  }
  trace.rounds = eng.rounds();
  trace.words = eng.totalWordsSent();
  trace.maxRound = eng.maxRoundWords();
  return trace;
}

TEST(RoundEngine, ThreadCountDoesNotChangeAnything) {
  const WorkloadTrace one = runWorkload(1);
  for (std::size_t threads : {2u, 4u, 8u}) {
    const WorkloadTrace many = runWorkload(threads);
    EXPECT_EQ(one, many) << threads << " threads";
  }
  EXPECT_EQ(one.rounds, 10u);
  EXPECT_EQ(one.words, 10u * 16u * 3u * 2u);
}

TEST(RoundEngine, ChargedCostsJoinTheLedger) {
  RoundEngine eng = makeMpcEngine(2, 8, 1);
  eng.chargeRounds(5);
  eng.chargeTraffic(123);
  EXPECT_EQ(eng.rounds(), 5u);
  EXPECT_EQ(eng.totalWordsSent(), 123u);
  EXPECT_EQ(eng.maxRoundWords(), 0u);  // nothing simulated yet
}

TEST(LeaderForest, RejectsUndersizedEngine) {
  LeaderForest forest(16);
  RoundEngine small(EngineConfig{8, 1}, std::make_unique<PramTopology>());
  EXPECT_THROW(forest.attachEngine(&small), std::invalid_argument);
}

TEST(LeaderForest, EngineBackedMergesMatchHostAndLedger) {
  const std::size_t n = 64;
  LeaderForest plain(n);
  LeaderForest backed(n);
  RoundEngine eng(EngineConfig{n, 2}, std::make_unique<PramTopology>());
  backed.attachEngine(&eng);
  std::uint64_t h = 7;
  for (int i = 0; i < 200; ++i) {
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto a = static_cast<std::uint32_t>((h >> 33) % n);
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto b = static_cast<std::uint32_t>((h >> 33) % n);
    EXPECT_EQ(plain.merge(a, b), backed.merge(a, b));
  }
  for (std::uint32_t v = 0; v < n; ++v)
    EXPECT_EQ(plain.leader(v), backed.leader(v));
  // The engine ledger is the PRAM cost model: rounds = depth, words = work.
  EXPECT_EQ(eng.rounds(), static_cast<std::size_t>(backed.depthCharged()));
  EXPECT_EQ(eng.totalWordsSent(), static_cast<std::size_t>(backed.workCharged()));
  EXPECT_EQ(plain.numSets(), backed.numSets());
}

}  // namespace
}  // namespace mpcspan
