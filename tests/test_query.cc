// The query plane: adapter bit-equality against the wrapped structures,
// TieredOracle fall-through semantics and counters, and concurrent mixed
// query/warm stress over the full stack (run under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "apsp/oracle.hpp"
#include "apsp/sketches.hpp"
#include "graph/builder.hpp"
#include "graph/connectivity.hpp"
#include "graph/distance.hpp"
#include "graph/generators.hpp"
#include "query/adapters.hpp"
#include "query/build.hpp"
#include "query/tiered.hpp"
#include "runtime/thread_pool.hpp"
#include "spanner/baswana_sen.hpp"

namespace mpcspan {
namespace {

using query::DistanceProvider;
using query::ExactDistanceProvider;
using query::kNoAnswer;
using query::SketchDistanceProvider;
using query::SpannerOracleProvider;
using query::TieredOracle;

Graph testGraph(std::size_t n = 150, std::size_t m = 600,
                std::uint64_t seed = 3) {
  Rng rng(seed);
  return gnmRandom(n, m, rng, {WeightModel::kUniform, 50.0}, /*connected=*/true);
}

// A graph with two components, to exercise kInfDist paths.
Graph splitGraph() {
  GraphBuilder b(8);
  b.addEdge(0, 1, 1.0);
  b.addEdge(1, 2, 2.0);
  b.addEdge(2, 3, 1.5);
  b.addEdge(4, 5, 1.0);
  b.addEdge(5, 6, 3.0);
  b.addEdge(6, 7, 1.0);
  return b.build();
}

// --- Adapter bit-equality: every adapter must forward answers unchanged. ---

TEST(Adapters, ExactMatchesDijkstraBitwise) {
  const Graph g = splitGraph();
  ExactDistanceProvider p(g);
  EXPECT_EQ(p.numVertices(), g.numVertices());
  EXPECT_EQ(p.stretchBound(), 1.0);
  for (VertexId u = 0; u < g.numVertices(); ++u) {
    const auto row = dijkstra(g, u);
    for (VertexId v = 0; v < g.numVertices(); ++v)
      EXPECT_EQ(p.query(u, v), row[v]) << u << "," << v;
  }
}

TEST(Adapters, SketchMatchesUnderlyingSketchesBitwise) {
  const Graph g = splitGraph();
  const auto sk = std::make_shared<const DistanceSketches>(
      g, SketchParams{.k = 2, .seed = 5});
  SketchDistanceProvider p(sk);
  EXPECT_EQ(p.stretchBound(), sk->stretchBound());
  for (VertexId u = 0; u < g.numVertices(); ++u)
    for (VertexId v = 0; v < g.numVertices(); ++v)
      EXPECT_EQ(p.query(u, v), sk->query(u, v)) << u << "," << v;
}

TEST(Adapters, SketchSweepOnRandomGraph) {
  const Graph g = testGraph();
  const auto sk = std::make_shared<const DistanceSketches>(
      g, SketchParams{.k = 3, .seed = 7});
  SketchDistanceProvider p(sk, /*stretchOverride=*/12.5);
  EXPECT_EQ(p.stretchBound(), 12.5);
  for (VertexId u = 0; u < g.numVertices(); u += 7)
    for (VertexId v = 0; v < g.numVertices(); ++v)
      EXPECT_EQ(p.query(u, v), sk->query(u, v));
}

TEST(Adapters, SpannerOracleMatchesSpannerDijkstra) {
  const Graph g = testGraph();
  auto spanner = buildBaswanaSen(g, {.k = 3, .seed = 2});
  const auto oracle = std::make_shared<const SpannerDistanceOracle>(
      g, std::move(spanner), /*cacheSources=*/8);
  SpannerOracleProvider p(oracle);
  for (VertexId u = 0; u < g.numVertices(); u += 11) {
    const auto row = dijkstra(oracle->spannerGraph(), u);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
      const Weight expect = u == v ? 0.0 : row[v];
      EXPECT_EQ(p.query(u, v), expect) << u << "," << v;
      EXPECT_EQ(p.tryQuery(u, v), expect);  // kCompute never declines
    }
  }
}

TEST(Adapters, CachedOnlyDeclinesColdAndAnswersWarm) {
  const Graph g = testGraph();
  auto spanner = buildBaswanaSen(g, {.k = 3, .seed = 2});
  const auto oracle = std::make_shared<SpannerDistanceOracle>(
      g, std::move(spanner), /*cacheSources=*/4);
  SpannerOracleProvider p(
      std::shared_ptr<const SpannerDistanceOracle>(oracle),
      SpannerOracleProvider::Mode::kCachedOnly);
  EXPECT_EQ(p.tryQuery(3, 9), kNoAnswer);  // nothing warm yet
  EXPECT_EQ(p.tryQuery(3, 3), 0.0);        // u == v answered without a row

  runtime::ThreadPool pool(2);
  oracle->warm({3}, pool);
  const auto row = dijkstra(oracle->spannerGraph(), 3);
  EXPECT_EQ(p.tryQuery(3, 9), row[9]);
  EXPECT_EQ(p.tryQuery(9, 3), kNoAnswer);  // source 9 still cold
  // query() (as opposed to tryQuery) must still answer by computing.
  EXPECT_EQ(p.query(9, 3), row[9]);
}

TEST(Adapters, QueryBatchMatchesQuery) {
  const Graph g = splitGraph();
  ExactDistanceProvider p(g);
  std::vector<query::QueryPair> pairs = {{0, 3}, {0, 7}, {4, 7}, {2, 2}};
  std::vector<Weight> out(pairs.size());
  p.queryBatch(pairs, out);
  for (std::size_t i = 0; i < pairs.size(); ++i)
    EXPECT_EQ(out[i], p.query(pairs[i].first, pairs[i].second));
  std::vector<Weight> tooSmall(2);
  EXPECT_THROW(p.queryBatch(pairs, tooSmall), std::invalid_argument);
}

// --- TieredOracle semantics. ---

/// Scripted provider for pinning tier fall-through behaviour.
class FakeProvider final : public DistanceProvider {
 public:
  FakeProvider(std::string name, Weight answer, std::size_t n = 4)
      : name_(std::move(name)), answer_(answer), n_(n) {}
  std::string name() const override { return name_; }
  std::size_t numVertices() const override { return n_; }
  Weight query(VertexId, VertexId) const override {
    return answer_ == kNoAnswer ? kInfDist : answer_;
  }
  Weight tryQuery(VertexId, VertexId) const override {
    ++calls;
    return answer_;
  }
  double stretchBound() const override { return 2.0; }
  std::size_t memoryWords() const override { return 10; }

  mutable std::atomic<int> calls{0};

 private:
  std::string name_;
  Weight answer_;
  std::size_t n_;
};

TEST(TieredOracle, FirstAnsweringTierWins) {
  auto a = std::make_shared<FakeProvider>("a", 5.0);
  auto b = std::make_shared<FakeProvider>("b", 1.0);
  TieredOracle t({a, b});
  EXPECT_EQ(t.query(0, 1), 5.0);
  EXPECT_EQ(a->calls.load(), 1);
  EXPECT_EQ(b->calls.load(), 0);
}

TEST(TieredOracle, DeclineAndInfFallThrough) {
  auto declines = std::make_shared<FakeProvider>("declines", kNoAnswer);
  auto inf = std::make_shared<FakeProvider>("inf", kInfDist);
  auto answers = std::make_shared<FakeProvider>("answers", 7.0);
  TieredOracle t({declines, inf, answers});
  EXPECT_EQ(t.query(0, 1), 7.0);  // kNoAnswer and non-final inf both fall through
  EXPECT_EQ(declines->calls.load(), 1);
  EXPECT_EQ(inf->calls.load(), 1);
  EXPECT_EQ(answers->calls.load(), 1);
}

TEST(TieredOracle, FinalTierInfinityIsAuthoritative) {
  auto inf = std::make_shared<FakeProvider>("inf", kInfDist);
  TieredOracle t({std::make_shared<FakeProvider>("declines", kNoAnswer), inf});
  EXPECT_EQ(t.query(0, 1), kInfDist);
  const auto stats = t.stats();
  EXPECT_EQ(stats[1].hits, 1u);  // accepted, not fallen through
}

TEST(TieredOracle, CountersAddUp) {
  auto a = std::make_shared<FakeProvider>("a", kNoAnswer);
  auto b = std::make_shared<FakeProvider>("b", 3.0);
  TieredOracle t({a, b});
  for (int i = 0; i < 10; ++i) t.query(0, 1);
  auto stats = t.stats();
  EXPECT_EQ(stats[0].attempts, 10u);
  EXPECT_EQ(stats[0].hits, 0u);
  EXPECT_EQ(stats[1].attempts, 10u);
  EXPECT_EQ(stats[1].hits, 10u);
  t.resetStats();
  stats = t.stats();
  EXPECT_EQ(stats[0].attempts, 0u);
  EXPECT_EQ(stats[1].hits, 0u);
}

TEST(TieredOracle, ValidatesConstruction) {
  EXPECT_THROW(TieredOracle({}), std::invalid_argument);
  EXPECT_THROW(
      TieredOracle({std::make_shared<FakeProvider>("a", 1.0, 4), nullptr}),
      std::invalid_argument);
  EXPECT_THROW(TieredOracle({std::make_shared<FakeProvider>("a", 1.0, 4),
                             std::make_shared<FakeProvider>("b", 1.0, 5)}),
               std::invalid_argument);
}

TEST(TieredOracle, DisconnectedPairFallsToExactInfinity) {
  const Graph g = splitGraph();
  query::BuildPlan plan;
  plan.algo = "baswana-sen";
  plan.k = 2;
  plan.sketchK = 2;
  const auto artifact = query::buildArtifact(g, plan);
  const auto plane = query::makeQueryPlane(artifact);
  // 0 and 4 are in different components: sketches return inf (non-final ->
  // fall through), spanner-cache declines, exact answers inf.
  EXPECT_EQ(plane.tiered->query(0, 4), kInfDist);
  const auto stats = plane.tiered->stats();
  EXPECT_EQ(stats.back().hits, 1u);
  // Connected pair: answered exactly-or-stretched, never below the true
  // distance, and the attempts column sums to queries so far per tier.
  const Weight est = plane.tiered->query(0, 3);
  const Weight exact = dijkstraPair(g, 0, 3);
  EXPECT_GE(est, exact - 1e-12);
  EXPECT_LE(est, artifact.composedStretch * exact + 1e-9);
  EXPECT_EQ(plane.tiered->stats()[0].attempts, 2u);
}

// --- Oracle warm/overflow semantics (satellite). ---

TEST(Oracle, WarmReturnsRowsActuallyComputed) {
  const Graph g = testGraph();
  auto spanner = buildBaswanaSen(g, {.k = 3, .seed = 4});
  SpannerDistanceOracle oracle(g, std::move(spanner), /*cacheSources=*/8);
  runtime::ThreadPool pool(2);

  EXPECT_EQ(oracle.warm({1, 2, 3}, pool), 3u);
  EXPECT_EQ(oracle.cachedRows(), 3u);
  // Re-warming the same sources computes nothing new.
  EXPECT_EQ(oracle.warm({1, 2, 3}, pool), 0u);
  // Duplicates are deduplicated before counting.
  EXPECT_EQ(oracle.warm({4, 4, 4, 5}, pool), 2u);
}

TEST(Oracle, WarmOverflowIsTruncatedToCapacity) {
  const Graph g = testGraph();
  auto spanner = buildBaswanaSen(g, {.k = 3, .seed = 4});
  SpannerDistanceOracle oracle(g, std::move(spanner), /*cacheSources=*/4);
  runtime::ThreadPool pool(2);

  std::vector<VertexId> sources;
  for (VertexId v = 0; v < 20; ++v) sources.push_back(v);
  // The cache can never retain more than capacity rows, so warm refuses to
  // compute more than that.
  EXPECT_EQ(oracle.warm(sources, pool), 4u);
  EXPECT_LE(oracle.cachedRows(), 4u);
  // Queries for unwarmed sources still work (lazy compute path).
  EXPECT_EQ(oracle.query(10, 11), dijkstra(oracle.spannerGraph(), 10)[11]);
  EXPECT_LE(oracle.cachedRows(), 4u);
}

// --- Concurrency: mixed query/warm over the full stack. ---

TEST(QueryPlane, ConcurrentQueriesWhileWarming) {
  const Graph g = testGraph(120, 480, 9);
  query::BuildPlan plan;
  plan.algo = "baswana-sen";
  plan.k = 2;
  plan.sketchK = 2;
  plan.cacheSources = 6;  // small: constant eviction churn under load
  const auto artifact = query::buildArtifact(g, plan);
  const auto plane = query::makeQueryPlane(artifact);
  const std::size_t n = g.numVertices();

  // Reference answers computed single-threaded before the storm.
  std::vector<query::QueryPair> pairs;
  std::vector<Weight> expected;
  Rng rng(21);
  for (int i = 0; i < 400; ++i) {
    const auto u = static_cast<VertexId>(rng.next(n));
    const auto v = static_cast<VertexId>(rng.next(n));
    pairs.push_back({u, v});
    expected.push_back(plane.tiered->query(u, v));
  }
  plane.tiered->resetStats();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  // 4 query threads replaying the reference workload...
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&, t] {
      for (std::size_t rep = 0; rep < 3; ++rep)
        for (std::size_t i = t; i < pairs.size(); i += 4) {
          const Weight w = plane.tiered->query(pairs[i].first, pairs[i].second);
          if (w != expected[i]) mismatches.fetch_add(1);
        }
    });
  // ...while one warmer cycles rows through the tiny cache.
  threads.emplace_back([&] {
    runtime::ThreadPool pool(2);
    for (VertexId base = 0; base < 60; base += 3)
      plane.oracle->warm({base, static_cast<VertexId>(base + 1),
                          static_cast<VertexId>(base + 2)},
                         pool);
  });
  for (auto& th : threads) th.join();

  // On a connected graph the sketch tier answers every pair, and sketches
  // are immutable — so concurrent answers must be bit-identical to the
  // quiescent reference no matter what the warmer does underneath.
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_LE(plane.oracle->cachedRows(), 6u);
  // Every query attempted the first tier: 4 threads x 3 reps x 100 pairs.
  const auto stats = plane.tiered->stats();
  EXPECT_EQ(stats[0].attempts, 4u * 3u * 100u);
}

TEST(QueryPlane, ConcurrentFallThroughUnderWarmChurn) {
  // A two-tier stack (spanner-cache -> exact) where *which* tier answers
  // depends on the racing warm state: every answer must still land in
  // [exact, stretchBound * exact]. Exercises the cached-only decline path
  // and LRU eviction concurrently (TSan leg).
  const Graph g = testGraph(100, 400, 15);
  auto spannerResult = buildBaswanaSen(g, {.k = 2, .seed = 4});
  const double stretch = spannerResult.stretchBound;
  const auto oracle = std::make_shared<SpannerDistanceOracle>(
      g, std::move(spannerResult), /*cacheSources=*/5);
  TieredOracle tiered(
      {std::make_shared<SpannerOracleProvider>(
           std::shared_ptr<const SpannerDistanceOracle>(oracle),
           SpannerOracleProvider::Mode::kCachedOnly),
       std::make_shared<ExactDistanceProvider>(g)});

  const std::size_t n = g.numVertices();
  std::vector<std::vector<Weight>> exact;
  for (VertexId u = 0; u < 16; ++u) exact.push_back(dijkstra(g, u));

  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&, t] {
      Rng rng(100 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 800; ++i) {
        const auto u = static_cast<VertexId>(rng.next(16));
        const auto v = static_cast<VertexId>(rng.next(n));
        const Weight w = tiered.query(u, v);
        const Weight d = exact[u][v];
        if (w < d - 1e-9 || w > stretch * d + 1e-9) violations.fetch_add(1);
      }
    });
  threads.emplace_back([&] {
    runtime::ThreadPool pool(2);
    for (int round = 0; round < 6; ++round)
      oracle->warm({static_cast<VertexId>(round % 16),
                    static_cast<VertexId>((round + 5) % 16),
                    static_cast<VertexId>((round + 11) % 16)},
                   pool);
  });
  for (auto& th : threads) th.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_LE(oracle->cachedRows(), 5u);
  const auto stats = tiered.stats();
  EXPECT_EQ(stats[0].attempts, 4u * 800u);
  // Both tiers answered some queries (warm rows existed part of the time).
  EXPECT_GT(stats[1].hits, 0u);
}

}  // namespace
}  // namespace mpcspan
