#include "mpc/cost_model.hpp"

#include <gtest/gtest.h>

namespace mpcspan {
namespace {

TEST(CostModel, StartsEmpty) {
  const CostModel c;
  EXPECT_EQ(c.supersteps(), 0);
  EXPECT_EQ(c.mpcRounds(0.5), 0);
  EXPECT_EQ(c.cliqueRounds(), 0);
}

TEST(CostModel, ChargesAndConverts) {
  CostModel c;
  c.charge(Prim::kSample);
  c.charge(Prim::kFindMin, 3);
  c.charge(Prim::kMerge);
  EXPECT_EQ(c.supersteps(), 5);
  EXPECT_EQ(c.nearLinearRounds(), 5);
  // gamma = 0.25 -> ceil(1/0.25) = 4 rounds per superstep.
  EXPECT_EQ(c.mpcRounds(0.25), 20);
  EXPECT_EQ(c.mpcRounds(0.5), 10);
  EXPECT_EQ(c.mpcRounds(1.0), 5);
  // gamma = 0.3 -> ceil(3.33) = 4.
  EXPECT_EQ(c.mpcRounds(0.3), 20);
}

TEST(CostModel, LocalSimIsFree) {
  CostModel c;
  c.charge(Prim::kLocalSim, 100);
  EXPECT_EQ(c.supersteps(), 0);
  EXPECT_EQ(c.invocations(Prim::kLocalSim), 100);
}

TEST(CostModel, CliqueExtraOnlyAffectsClique) {
  CostModel c;
  c.charge(Prim::kSample, 2);
  c.chargeCliqueExtra(7);
  EXPECT_EQ(c.cliqueRounds(), 9);
  EXPECT_EQ(c.nearLinearRounds(), 2);
  EXPECT_EQ(c.mpcRounds(0.5), 4);
}

TEST(CostModel, AbsorbMergesLedgers) {
  CostModel a, b;
  a.charge(Prim::kSort, 2);
  b.charge(Prim::kSort, 3);
  b.charge(Prim::kBroadcast);
  b.chargeCliqueExtra(1);
  a.absorb(b);
  EXPECT_EQ(a.invocations(Prim::kSort), 5);
  EXPECT_EQ(a.invocations(Prim::kBroadcast), 1);
  EXPECT_EQ(a.cliqueRounds(), 7);
}

TEST(CostModel, LedgerStringListsNonZero) {
  CostModel c;
  c.charge(Prim::kContraction, 2);
  c.charge(Prim::kSample);
  const std::string s = c.ledgerString();
  EXPECT_NE(s.find("contraction=2"), std::string::npos);
  EXPECT_NE(s.find("sample=1"), std::string::npos);
  EXPECT_EQ(s.find("sort"), std::string::npos);
}

TEST(CostModel, PrimNamesAreStable) {
  EXPECT_STREQ(primName(Prim::kSample), "sample");
  EXPECT_STREQ(primName(Prim::kContraction), "contraction");
  EXPECT_STREQ(primName(Prim::kExponentiation), "exponentiation");
}

}  // namespace
}  // namespace mpcspan
