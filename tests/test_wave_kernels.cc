// Resident-path equivalence of the three compute waves ported to registered
// kernels (growth find-min supersteps, clique label round, PRAM LeaderForest
// CRCW writes): for each wave, the same multi-iteration workload must be
// bit-identical — results, rounds, traffic ledger, and (where observable)
// kernel-owned state — across 1/N shards × 1/N threads, on the resident
// worker backend and on the legacy fork-per-round reference
// (MPCSPAN_RESIDENT=0 / EngineConfig::resident = 0), with the resident
// workers forking exactly once across all iterations. Extends the
// test_sharded_engine / test_mpc_primitives pattern to the three waves.
#include <gtest/gtest.h>

#include <sys/types.h>

#include <memory>
#include <numeric>

#include "cclique/iteration_cc.hpp"
#include "graph/generators.hpp"
#include "mpc/dist_iteration.hpp"
#include "pram/pram.hpp"
#include "runtime/round_engine.hpp"
#include "runtime/shard/sharded_engine.hpp"
#include "spanner/engine.hpp"

namespace mpcspan {
namespace {

using runtime::EngineConfig;
using runtime::PramTopology;
using runtime::RoundEngine;

std::vector<VertexId> identity(std::size_t n) {
  std::vector<VertexId> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

/// Everything observable from one wave run, for cross-backend comparison.
struct WaveTrace {
  std::vector<GroupMinEdge> groupMins;
  std::vector<ClosestSampled> joins;
  std::size_t roundsUsed = 0;
  std::size_t rounds = 0;
  std::size_t words = 0;
  std::size_t maxRound = 0;

  friend bool operator==(const WaveTrace&, const WaveTrace&) = default;
};

/// Three growth iterations with evolving cluster state on one simulator —
/// the kernel instances (sort splitters, segmented-min reductions, the
/// filter/scatter chain) must carry their per-machine state across
/// iterations identically on every backend.
WaveTrace runGrowthWave(std::size_t threads, std::size_t shards, int resident,
                        std::vector<pid_t>* pidsOut = nullptr) {
  Rng rng(99);
  const Graph g = gnmRandom(300, 1500, rng, {WeightModel::kUniform, 15.0}, true);
  const std::size_t n = g.numVertices();
  const std::vector<VertexId> superOf = identity(n);
  std::vector<VertexId> clusterOf = identity(n);
  std::vector<char> alive(g.numEdges(), 1);

  MpcSimulator sim(MpcConfig::forInput(4 * g.numEdges(), 0.6, 3.0), threads,
                   shards, resident);
  WaveTrace trace;
  for (int iter = 0; iter < 3; ++iter) {
    const std::vector<char> sampled = HashCoinPolicy::draw(
        std::vector<char>(n, 1), 0.3, /*seed=*/99, /*drawKey=*/iter + 1);
    const DistIterationResult res =
        distIterationKernel(sim, g, superOf, clusterOf, sampled, &alive);
    trace.groupMins.insert(trace.groupMins.end(), res.groupMins.begin(),
                           res.groupMins.end());
    trace.joins.insert(trace.joins.end(), res.joins.begin(), res.joins.end());
    trace.roundsUsed += res.roundsUsed;
    // Evolve the state deterministically: joiners move, a slice of the
    // edges dies — the next iteration sees genuinely different inputs.
    for (const ClosestSampled& cs : res.joins) clusterOf[cs.v] = cs.cluster;
    for (const GroupMinEdge& gm : res.groupMins)
      if ((gm.id & 3u) == 0) alive[gm.id] = 0;
    if (pidsOut && sim.engine().shardBackend()) {
      const std::vector<pid_t> pids = sim.engine().shardBackend()->workerPids();
      if (pidsOut->empty())
        *pidsOut = pids;
      else
        EXPECT_EQ(*pidsOut, pids) << "workers must fork exactly once";
    }
  }
  trace.rounds = sim.rounds();
  trace.words = sim.totalWordsSent();
  trace.maxRound = sim.maxRoundWords();
  return trace;
}

TEST(WaveKernels, GrowthBitIdenticalAcrossShardsThreadsAndBackends) {
  const WaveTrace base = runGrowthWave(1, 1, /*resident=*/1);
  ASSERT_FALSE(base.groupMins.empty());
  ASSERT_GT(base.rounds, 0u);
  std::vector<pid_t> pids;
  EXPECT_EQ(base, runGrowthWave(1, 2, 1, &pids)) << "2 shards resident";
  EXPECT_EQ(pids.size(), 2u);
  EXPECT_EQ(base, runGrowthWave(2, 3, 1)) << "3 shards x 2 threads resident";
  EXPECT_EQ(base, runGrowthWave(1, 2, 0)) << "2 shards fork-per-round";
  EXPECT_EQ(base, runGrowthWave(2, 4, 0)) << "4 shards x 2 threads fork-per-round";
}

/// Two clique iterations (different sampled draws) on one clique — the
/// label round, candidate derivation, and Lenzen accounting must match on
/// every backend, with the kernel's candidate state cleanly rebuilt per
/// iteration.
WaveTrace runCliqueWave(std::size_t threads, std::size_t shards, int resident,
                        std::vector<pid_t>* pidsOut = nullptr) {
  Rng rng(7);
  const Graph g = gnmRandom(60, 260, rng, {WeightModel::kUniform, 9.0}, true);
  const std::size_t n = g.numVertices();
  std::vector<char> alive(g.numEdges(), 1);
  for (EdgeId id = 0; id < g.numEdges(); id += 5) alive[id] = 0;

  CongestedClique cc(n, threads, shards, resident);
  WaveTrace trace;
  for (int iter = 0; iter < 3; ++iter) {
    const std::vector<char> sampled = HashCoinPolicy::draw(
        std::vector<char>(n, 1), 0.4, /*seed=*/7, /*drawKey=*/iter + 1);
    const DistIterationResult res = cliqueIterationKernel(
        cc, g, identity(n), identity(n), sampled, &alive);
    trace.groupMins.insert(trace.groupMins.end(), res.groupMins.begin(),
                           res.groupMins.end());
    trace.joins.insert(trace.joins.end(), res.joins.begin(), res.joins.end());
    trace.roundsUsed += res.roundsUsed;
    // The per-iteration decisions must equal the host reference too.
    const DistIterationResult ref =
        referenceIterationKernel(g, identity(n), identity(n), sampled, &alive);
    EXPECT_EQ(res.groupMins, ref.groupMins);
    EXPECT_EQ(res.joins, ref.joins);
    if (pidsOut && cc.engine().shardBackend()) {
      const std::vector<pid_t> pids = cc.engine().shardBackend()->workerPids();
      if (pidsOut->empty())
        *pidsOut = pids;
      else
        EXPECT_EQ(*pidsOut, pids) << "workers must fork exactly once";
    }
  }
  trace.rounds = cc.rounds();
  trace.words = cc.totalWords();
  return trace;
}

TEST(WaveKernels, CliqueLabelRoundBitIdenticalAcrossShardsAndBackends) {
  const WaveTrace base = runCliqueWave(1, 1, /*resident=*/1);
  ASSERT_GT(base.rounds, 0u);
  ASSERT_GT(base.words, 0u);
  std::vector<pid_t> pids;
  EXPECT_EQ(base, runCliqueWave(1, 3, 1, &pids)) << "3 shards resident";
  EXPECT_EQ(pids.size(), 3u);
  EXPECT_EQ(base, runCliqueWave(2, 4, 1)) << "4 shards x 2 threads resident";
  EXPECT_EQ(base, runCliqueWave(1, 3, 0)) << "3 shards fork-per-round";
}

/// A merge schedule on an engine-backed LeaderForest: host mirror, kernel
/// cells, and the ledger must agree on every backend.
struct ForestTrace {
  std::vector<std::uint32_t> leaders;
  std::vector<std::vector<Word>> cells;
  std::size_t rounds = 0;
  std::size_t words = 0;

  friend bool operator==(const ForestTrace&, const ForestTrace&) = default;
};

ForestTrace runForestWave(std::size_t threads, std::size_t shards, int resident,
                          std::vector<pid_t>* pidsOut = nullptr) {
  const std::size_t n = 32;
  RoundEngine eng(EngineConfig{n, threads, shards, resident},
                  std::make_unique<PramTopology>());
  LeaderForest lf(n);
  lf.attachEngine(&eng);
  std::uint64_t h = 11;
  for (int i = 0; i < 60; ++i) {
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto a = static_cast<std::uint32_t>((h >> 33) % n);
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto b = static_cast<std::uint32_t>((h >> 33) % n);
    lf.merge(a, b);
    if (pidsOut && eng.shardBackend()) {
      const std::vector<pid_t> pids = eng.shardBackend()->workerPids();
      if (pidsOut->empty())
        *pidsOut = pids;
      else
        EXPECT_EQ(*pidsOut, pids) << "workers must fork exactly once";
    }
  }
  ForestTrace trace;
  for (std::uint32_t v = 0; v < n; ++v) trace.leaders.push_back(lf.leader(v));
  trace.cells = eng.fetchKernel(lf.kernelId());
  trace.rounds = eng.rounds();
  trace.words = eng.totalWordsSent();
  EXPECT_EQ(trace.rounds, static_cast<std::size_t>(lf.depthCharged()));
  EXPECT_EQ(trace.words, static_cast<std::size_t>(lf.workCharged()));
  // The kernel-owned cells are the simulation's truth; they must mirror the
  // host bookkeeping exactly.
  for (std::uint32_t v = 0; v < n; ++v)
    EXPECT_EQ(trace.cells[v], std::vector<Word>{trace.leaders[v]}) << "cell " << v;
  return trace;
}

TEST(WaveKernels, LeaderForestWritesBitIdenticalAcrossShardsAndBackends) {
  const ForestTrace base = runForestWave(1, 1, /*resident=*/1);
  ASSERT_GT(base.rounds, 0u);
  std::vector<pid_t> pids;
  EXPECT_EQ(base, runForestWave(1, 4, 1, &pids)) << "4 shards resident";
  EXPECT_EQ(pids.size(), 4u);
  EXPECT_EQ(base, runForestWave(2, 2, 1)) << "2 shards x 2 threads resident";
  EXPECT_EQ(base, runForestWave(1, 4, 0)) << "4 shards fork-per-round";
}

}  // namespace
}  // namespace mpcspan
