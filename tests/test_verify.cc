#include "spanner/verify.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace mpcspan {
namespace {

std::vector<EdgeId> allEdges(const Graph& g) {
  std::vector<EdgeId> ids(g.numEdges());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

TEST(Verify, FullGraphHasStretchOne) {
  Rng rng(1);
  const Graph g = gnmRandom(100, 400, rng, {WeightModel::kUniform, 10.0}, true);
  const auto report = verifySpanner(g, allEdges(g), 1.0);
  EXPECT_TRUE(report.spanning);
  EXPECT_EQ(report.edgesChecked, 0u);  // nothing missing to audit
  EXPECT_EQ(report.violations, 0u);
}

TEST(Verify, DetectsKnownDetour) {
  // Triangle with weights 1,1,3: dropping the weight-3 edge leaves a detour
  // of 2/3 of its weight -> stretch 2/3 < 1. Dropping a weight-1 edge
  // leaves detour 4 -> stretch 4. Builder sorts edges by endpoints:
  // id 0 = (0,1,w1), id 1 = (0,2,w3), id 2 = (1,2,w1).
  GraphBuilder b(3);
  b.addEdge(0, 1, 1.0);
  b.addEdge(1, 2, 1.0);
  b.addEdge(0, 2, 3.0);
  const Graph g = b.build();
  {
    const auto report = verifySpanner(g, {0, 2}, 1.0);  // drop (0,2,3)
    EXPECT_TRUE(report.spanning);
    EXPECT_EQ(report.edgesChecked, 1u);
    EXPECT_NEAR(report.maxEdgeStretch, 2.0 / 3.0, 1e-12);
    EXPECT_EQ(report.violations, 0u);
  }
  {
    const auto report = verifySpanner(g, {1, 2}, 3.0);  // drop 0-1
    EXPECT_NEAR(report.maxEdgeStretch, 4.0, 1e-12);
    EXPECT_EQ(report.violations, 1u);  // 4 > bound 3
  }
}

TEST(Verify, DisconnectedSpannerReported) {
  Rng rng(2);
  const Graph g = cycleGraph(6, rng);
  // Remove two edges -> the cycle splits.
  const auto report = verifySpanner(g, {0, 1, 2, 3}, 100.0);
  EXPECT_FALSE(report.spanning);
  EXPECT_EQ(report.maxEdgeStretch, std::numeric_limits<double>::infinity());
}

TEST(Verify, EdgeSamplingCapsWork) {
  Rng rng(3);
  const Graph g = gnmRandom(200, 2000, rng, {}, true);
  // Empty spanner of a connected graph: everything is a violation, but we
  // only audit maxEdgeChecks of them.
  std::vector<EdgeId> half;
  for (EdgeId i = 0; i < g.numEdges(); i += 2) half.push_back(i);
  const auto report =
      verifySpanner(g, half, 1000.0, {.maxEdgeChecks = 50, .pairSources = 0});
  EXPECT_EQ(report.edgesChecked, 50u);
  EXPECT_EQ(report.pairsChecked, 0u);
}

TEST(Verify, PairAuditMatchesEdgeAuditOnTree) {
  Rng rng(4);
  const Graph g = pathGraph(50, rng, {WeightModel::kUniform, 4.0});
  const auto report = verifySpanner(g, allEdges(g), 1.0, {.pairSources = 6});
  EXPECT_GT(report.pairsChecked, 0u);
  EXPECT_NEAR(report.maxPairStretch, 1.0, 1e-9);
}

TEST(Verify, MeasurePairStretchInfinityOnBrokenSpanner) {
  Rng rng(5);
  const Graph g = cycleGraph(8, rng);
  EXPECT_EQ(measurePairStretch(g, {0, 1, 2, 3, 4, 5}, 4, 1),
            std::numeric_limits<double>::infinity());
  EXPECT_NEAR(measurePairStretch(g, allEdges(g), 4, 1), 1.0, 1e-9);
}

TEST(Verify, MeanStretchBetweenOneAndMax) {
  Rng rng(6);
  const Graph g = gnmRandom(150, 900, rng, {WeightModel::kUniform, 8.0}, true);
  // Keep a spanning tree plus some edges: use all edges except every 3rd.
  std::vector<EdgeId> keep;
  for (EdgeId i = 0; i < g.numEdges(); ++i)
    if (i % 3 != 0) keep.push_back(i);
  const auto report = verifySpanner(g, keep, 1e9);
  if (report.spanning && report.edgesChecked > 0) {
    EXPECT_LE(report.meanEdgeStretch, report.maxEdgeStretch + 1e-9);
    EXPECT_GT(report.meanEdgeStretch, 0.0);
  }
}

}  // namespace
}  // namespace mpcspan
