#include "graph/connectivity.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/union_find.hpp"

namespace mpcspan {
namespace {

TEST(UnionFind, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.numComponents(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(0, 2));
  EXPECT_EQ(uf.numComponents(), 4u);
  uf.unite(2, 3);
  uf.unite(0, 3);
  EXPECT_TRUE(uf.connected(1, 2));
  EXPECT_EQ(uf.numComponents(), 2u);
  EXPECT_EQ(uf.componentSize(1), 4u);
}

TEST(UnionFind, FindIsIdempotent) {
  UnionFind uf(10);
  for (std::uint32_t i = 0; i + 1 < 10; ++i) uf.unite(i, i + 1);
  const auto r = uf.find(0);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(uf.find(i), r);
}

TEST(Connectivity, ComponentLabels) {
  GraphBuilder b(6);
  b.addEdge(0, 1);
  b.addEdge(1, 2);
  b.addEdge(3, 4);
  const Graph g = b.build();
  const auto labels = componentLabels(g);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[5], labels[0]);
  EXPECT_EQ(numComponents(g), 3u);
}

TEST(Connectivity, SameComponentsDetectsBreak) {
  Rng rng(1);
  const Graph g = cycleGraph(8, rng);
  std::vector<EdgeId> all(g.numEdges());
  std::iota(all.begin(), all.end(), 0);
  EXPECT_TRUE(sameComponents(g, all));
  // A cycle minus one edge still spans.
  std::vector<EdgeId> minusOne(all.begin() + 1, all.end());
  EXPECT_TRUE(sameComponents(g, minusOne));
  // Minus two edges splits the cycle.
  std::vector<EdgeId> minusTwo(all.begin() + 2, all.end());
  EXPECT_FALSE(sameComponents(g, minusTwo));
}

TEST(Connectivity, SubgraphKeepsVertexSet) {
  Rng rng(2);
  const Graph g = gnmRandom(50, 120, rng);
  const Graph h = subgraph(g, {0, 1, 2});
  EXPECT_EQ(h.numVertices(), 50u);
  EXPECT_EQ(h.numEdges(), 3u);
}

}  // namespace
}  // namespace mpcspan
