// Mini-fuzzer: many small random instances (assorted sizes, densities,
// weight models, algorithms, seeds), each with a *full* per-edge stretch
// audit. Small graphs make exhaustive verification cheap, so this net
// catches corner cases the fixed-workload suites might miss (near-empty
// graphs, disconnected shards, duplicate weights, single-cluster collapse).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/cluster_merging.hpp"
#include "spanner/sqrtk.hpp"
#include "spanner/tradeoff.hpp"
#include "spanner/verify.hpp"

namespace mpcspan {
namespace {

SpannerResult runByIndex(int which, const Graph& g, std::uint32_t k,
                         std::uint64_t seed) {
  switch (which % 4) {
    case 0: return buildBaswanaSen(g, {.k = k, .seed = seed});
    case 1: return buildClusterMergingSpanner(g, {.k = k, .seed = seed});
    case 2: return buildSqrtKSpanner(g, {.k = k, .seed = seed});
    default: {
      TradeoffParams p;
      p.k = k;
      p.t = static_cast<std::uint32_t>(1 + which % 3);
      p.seed = seed;
      return buildTradeoffSpanner(g, p);
    }
  }
}

class SpannerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SpannerFuzz, RandomInstanceFullAudit) {
  const int trial = GetParam();
  Rng meta(0xF00D + static_cast<std::uint64_t>(trial) * 1315423911ULL);

  const std::size_t n = 2 + meta.next(60);
  const std::size_t maxEdges = n * (n - 1) / 2;
  const std::size_t m = meta.next(maxEdges + 1);
  WeightSpec weights;
  switch (meta.next(4)) {
    case 0: weights = {WeightModel::kUnit, 1.0}; break;
    case 1: weights = {WeightModel::kUniform, 1.0 + meta.uniform() * 99.0}; break;
    case 2: weights = {WeightModel::kInteger, 1.0 + double(meta.next(8))}; break;
    default: weights = {WeightModel::kExponential, 200.0}; break;
  }
  Rng rng(meta());
  const Graph g = gnmRandom(n, m, rng, weights, meta.coin(0.5));
  const auto k = static_cast<std::uint32_t>(1 + meta.next(9));
  const std::uint64_t seed = meta();

  const SpannerResult r = runByIndex(trial, g, k, seed);
  ASSERT_LE(r.edges.size(), g.numEdges());
  for (EdgeId id : r.edges) ASSERT_LT(id, g.numEdges());

  const StretchReport report = verifySpanner(g, r.edges, r.stretchBound,
                                             {.maxEdgeChecks = 0,  // audit all
                                              .pairSources = 2});
  EXPECT_TRUE(report.spanning)
      << "trial=" << trial << " n=" << n << " m=" << g.numEdges() << " k=" << k;
  EXPECT_EQ(report.violations, 0u)
      << "trial=" << trial << " n=" << n << " m=" << g.numEdges() << " k=" << k
      << " max=" << report.maxEdgeStretch << " bound=" << r.stretchBound;
}

INSTANTIATE_TEST_SUITE_P(Trials, SpannerFuzz, ::testing::Range(0, 48));

}  // namespace
}  // namespace mpcspan
