#include "pram/pram.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "spanner/tradeoff.hpp"

namespace mpcspan {
namespace {

TEST(LogStar, KnownValues) {
  EXPECT_EQ(logStar(1.0), 0);
  EXPECT_EQ(logStar(2.0), 1);
  EXPECT_EQ(logStar(4.0), 2);
  EXPECT_EQ(logStar(16.0), 3);
  EXPECT_EQ(logStar(65536.0), 4);
  EXPECT_EQ(logStar(1e18), 5);
}

TEST(PramCost, DepthIsSuperstepsTimesLogStar) {
  Rng rng(1);
  const Graph g = gnmRandom(300, 1500, rng, {WeightModel::kUniform, 5.0}, true);
  TradeoffParams p;
  p.k = 8;
  p.t = 2;
  p.seed = 1;
  const SpannerResult r = buildTradeoffSpanner(g, p);
  const PramCost cost = pramCostOf(r, g.numVertices(), g.numEdges());
  EXPECT_EQ(cost.depth, r.cost.supersteps() * logStar(300.0));
  EXPECT_GE(cost.work, static_cast<long>(g.numEdges()));
}

TEST(PramCost, DepthBeatsBaswanaSenShape) {
  // The whole point of Section 1.3's PRAM claim: depth o(k) for the fast
  // algorithm vs Theta(k log* n) for [BS07]-style constructions.
  Rng rng(2);
  const Graph g = gnmRandom(400, 1600, rng, {}, true);
  TradeoffParams fast;
  fast.k = 64;
  fast.t = 1;
  fast.seed = 2;
  const PramCost fastCost =
      pramCostOf(buildTradeoffSpanner(g, fast), g.numVertices(), g.numEdges());
  // t=1 runs ceil(log2 64) = 6 iterations; [BS07] would run 63.
  EXPECT_LT(fastCost.depth, 64 * logStar(400.0));
}

TEST(LeaderForest, MergeSemantics) {
  LeaderForest lf(6);
  EXPECT_EQ(lf.numSets(), 6u);
  EXPECT_TRUE(lf.merge(0, 1));
  EXPECT_FALSE(lf.merge(1, 0));
  EXPECT_TRUE(lf.sameSet(0, 1));
  EXPECT_FALSE(lf.sameSet(0, 2));
  EXPECT_TRUE(lf.merge(2, 3));
  EXPECT_TRUE(lf.merge(0, 2));
  EXPECT_TRUE(lf.sameSet(1, 3));
  EXPECT_EQ(lf.numSets(), 3u);
  EXPECT_EQ(lf.setSize(1), 4u);
}

TEST(LeaderForest, QueriesAreSinglePointerReads) {
  LeaderForest lf(8);
  lf.merge(0, 1);
  lf.merge(2, 3);
  lf.merge(0, 2);
  // Every member points directly at the leader (no chains to chase).
  const std::uint32_t l = lf.leader(0);
  for (std::uint32_t v : {0u, 1u, 2u, 3u}) EXPECT_EQ(lf.leader(v), l);
}

TEST(LeaderForest, DepthIsOnePerMergeWorkIsSmallerSide) {
  LeaderForest lf(8);
  lf.merge(0, 1);  // work 1
  lf.merge(2, 3);  // work 1
  lf.merge(0, 2);  // sizes 2+2 -> work 2
  lf.merge(0, 4);  // sizes 4+1 -> work 1
  EXPECT_EQ(lf.depthCharged(), 4);
  EXPECT_EQ(lf.workCharged(), 5);
}

TEST(LeaderForest, UnionBySizeBoundsTotalWork) {
  // Classic bound: total merge work is O(n log n).
  const std::size_t n = 1024;
  LeaderForest lf(n);
  for (std::size_t span = 1; span < n; span *= 2)
    for (std::size_t i = 0; i + span < n; i += 2 * span)
      lf.merge(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i + span));
  EXPECT_EQ(lf.numSets(), 1u);
  EXPECT_LE(lf.workCharged(), static_cast<long>(n) * 10);
}

}  // namespace
}  // namespace mpcspan
