#include "pram/pram.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.hpp"
#include "runtime/round_engine.hpp"
#include "spanner/tradeoff.hpp"

namespace mpcspan {
namespace {

TEST(LogStar, KnownValues) {
  EXPECT_EQ(logStar(1.0), 0);
  EXPECT_EQ(logStar(2.0), 1);
  EXPECT_EQ(logStar(4.0), 2);
  EXPECT_EQ(logStar(16.0), 3);
  EXPECT_EQ(logStar(65536.0), 4);
  EXPECT_EQ(logStar(1e18), 5);
}

TEST(PramCost, DepthIsSuperstepsTimesLogStar) {
  Rng rng(1);
  const Graph g = gnmRandom(300, 1500, rng, {WeightModel::kUniform, 5.0}, true);
  TradeoffParams p;
  p.k = 8;
  p.t = 2;
  p.seed = 1;
  const SpannerResult r = buildTradeoffSpanner(g, p);
  const PramCost cost = pramCostOf(r, g.numVertices(), g.numEdges());
  EXPECT_EQ(cost.depth, r.cost.supersteps() * logStar(300.0));
  EXPECT_GE(cost.work, static_cast<long>(g.numEdges()));
}

TEST(PramCost, DepthBeatsBaswanaSenShape) {
  // The whole point of Section 1.3's PRAM claim: depth o(k) for the fast
  // algorithm vs Theta(k log* n) for [BS07]-style constructions.
  Rng rng(2);
  const Graph g = gnmRandom(400, 1600, rng, {}, true);
  TradeoffParams fast;
  fast.k = 64;
  fast.t = 1;
  fast.seed = 2;
  const PramCost fastCost =
      pramCostOf(buildTradeoffSpanner(g, fast), g.numVertices(), g.numEdges());
  // t=1 runs ceil(log2 64) = 6 iterations; [BS07] would run 63.
  EXPECT_LT(fastCost.depth, 64 * logStar(400.0));
}

TEST(LeaderForest, MergeSemantics) {
  LeaderForest lf(6);
  EXPECT_EQ(lf.numSets(), 6u);
  EXPECT_TRUE(lf.merge(0, 1));
  EXPECT_FALSE(lf.merge(1, 0));
  EXPECT_TRUE(lf.sameSet(0, 1));
  EXPECT_FALSE(lf.sameSet(0, 2));
  EXPECT_TRUE(lf.merge(2, 3));
  EXPECT_TRUE(lf.merge(0, 2));
  EXPECT_TRUE(lf.sameSet(1, 3));
  EXPECT_EQ(lf.numSets(), 3u);
  EXPECT_EQ(lf.setSize(1), 4u);
}

TEST(LeaderForest, QueriesAreSinglePointerReads) {
  LeaderForest lf(8);
  lf.merge(0, 1);
  lf.merge(2, 3);
  lf.merge(0, 2);
  // Every member points directly at the leader (no chains to chase).
  const std::uint32_t l = lf.leader(0);
  for (std::uint32_t v : {0u, 1u, 2u, 3u}) EXPECT_EQ(lf.leader(v), l);
}

TEST(LeaderForest, DepthIsOnePerMergeWorkIsSmallerSide) {
  LeaderForest lf(8);
  lf.merge(0, 1);  // work 1
  lf.merge(2, 3);  // work 1
  lf.merge(0, 2);  // sizes 2+2 -> work 2
  lf.merge(0, 4);  // sizes 4+1 -> work 1
  EXPECT_EQ(lf.depthCharged(), 4);
  EXPECT_EQ(lf.workCharged(), 5);
}

TEST(LeaderForest, MergeRejectsOutOfRangeElementIds) {
  // Regression: merge() used to index a numMachines()-sized outbox vector
  // with raw vertex ids — an id past the forest (hence past the engine's
  // machine range) has to fail typed, engine-backed or not, instead of
  // reading or addressing out of bounds.
  LeaderForest plain(4);
  EXPECT_THROW(plain.merge(0, 4), std::out_of_range);
  EXPECT_THROW(plain.merge(7, 1), std::out_of_range);

  LeaderForest backed(4);
  runtime::RoundEngine eng(runtime::EngineConfig{4, 1, 1},
                           std::make_unique<runtime::PramTopology>());
  backed.attachEngine(&eng);
  EXPECT_THROW(backed.merge(0, 9), std::out_of_range);
  EXPECT_EQ(eng.rounds(), 0u);  // the rejected merge charged nothing
  EXPECT_TRUE(backed.merge(0, 1));
  EXPECT_EQ(eng.rounds(), 1u);
}

TEST(LeaderForest, ForestLargerThanEngineIsRejectedAtAttach) {
  // Regression companion: a forest with more elements than the engine has
  // memory cells can never run a write round — attaching must throw before
  // any merge can address a cell outside the machine range.
  LeaderForest forest(8);
  runtime::RoundEngine small(runtime::EngineConfig{4, 1, 1},
                             std::make_unique<runtime::PramTopology>());
  EXPECT_THROW(forest.attachEngine(&small), std::invalid_argument);
  // The failed attach leaves the forest engine-less and fully usable.
  EXPECT_TRUE(forest.merge(0, 1));
  EXPECT_EQ(forest.numSets(), 7u);
}

TEST(LeaderForest, KernelCellsMirrorHostLeaders) {
  const std::size_t n = 12;
  LeaderForest lf(n);
  runtime::RoundEngine eng(runtime::EngineConfig{n, 1, 1},
                           std::make_unique<runtime::PramTopology>());
  lf.attachEngine(&eng);
  lf.merge(0, 1);
  lf.merge(2, 3);
  lf.merge(0, 2);
  lf.merge(9, 10);
  const auto cells = eng.fetchKernel(lf.kernelId());
  ASSERT_EQ(cells.size(), n);
  for (std::uint32_t v = 0; v < n; ++v) {
    ASSERT_EQ(cells[v].size(), 1u);
    EXPECT_EQ(cells[v][0], lf.leader(v)) << "cell " << v;
  }
  EXPECT_EQ(eng.rounds(), static_cast<std::size_t>(lf.depthCharged()));
  EXPECT_EQ(eng.totalWordsSent(), static_cast<std::size_t>(lf.workCharged()));
}

TEST(LeaderForest, EmptyDeliveryInWriteRoundIsRejected) {
  // Regression: the legacy merge read delivered[v].front().payload.front()
  // unchecked — a stripped delivery (zero-word payload, which only a corrupt
  // wire can produce; the PRAM topology rejects it in a validated round) was
  // UB. The kernel's absorb phase must reject it with a typed error. Drive
  // the kernel directly through its global registration, handing it a
  // crafted inbox.
  const runtime::KernelFactory* factory =
      runtime::findGlobalKernel("mpcspan.pram.leaderforest");
  ASSERT_NE(factory, nullptr);
  const std::unique_ptr<runtime::StepKernel> kernel = (*factory)();
  runtime::BlockStore store(1);
  const std::vector<Word> absorbArgs{kLeaderPhaseAbsorb};
  {
    const std::vector<runtime::Delivery> inbox{{0, {Word{3}}}};
    kernel->local({0, 1, inbox, absorbArgs, store});  // a real write: fine
  }
  {
    const std::vector<runtime::Delivery> inbox{{0, {}}};
    EXPECT_THROW(kernel->local({0, 1, inbox, absorbArgs, store}),
                 std::invalid_argument);
  }
}

TEST(LeaderForest, UnionBySizeBoundsTotalWork) {
  // Classic bound: total merge work is O(n log n).
  const std::size_t n = 1024;
  LeaderForest lf(n);
  for (std::size_t span = 1; span < n; span *= 2)
    for (std::size_t i = 0; i + span < n; i += 2 * span)
      lf.merge(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i + span));
  EXPECT_EQ(lf.numSets(), 1u);
  EXPECT_LE(lf.workCharged(), static_cast<long>(n) * 10);
}

}  // namespace
}  // namespace mpcspan
