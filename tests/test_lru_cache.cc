// ShardedLruCache: the bounded sharded LRU under the oracle's hot query
// path — capacity enforcement, strict LRU order (single shard), the
// eviction-keeps-held-rows guarantee, first-insert-wins race semantics,
// and a concurrent get/insert stress run.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "util/lru_cache.hpp"

namespace mpcspan {
namespace {

using Cache = ShardedLruCache<int, int>;

TEST(LruCache, StoresAndRetrieves) {
  Cache c(4);
  EXPECT_EQ(c.get(1), nullptr);
  c.insertOrGet(1, std::make_shared<const int>(10));
  const auto v = c.get(1);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 10);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(LruCache, NeverExceedsCapacity) {
  Cache c(8, 3);
  for (int i = 0; i < 100; ++i)
    c.insertOrGet(i, std::make_shared<const int>(i));
  EXPECT_LE(c.size(), 8u);
  // Per-shard quotas sum to the global capacity.
  EXPECT_EQ(c.capacity(), 8u);
  EXPECT_EQ(c.numShards(), 3u);
}

TEST(LruCache, EvictsLeastRecentlyUsedFirst) {
  Cache c(3, /*shards=*/1);  // single shard: strict global LRU
  for (int i = 0; i < 3; ++i)
    c.insertOrGet(i, std::make_shared<const int>(i));
  // Touch 0 so it becomes MRU; 1 is now the LRU entry.
  EXPECT_NE(c.get(0), nullptr);
  c.insertOrGet(3, std::make_shared<const int>(3));
  EXPECT_EQ(c.get(1), nullptr);  // evicted
  EXPECT_NE(c.get(0), nullptr);
  EXPECT_NE(c.get(2), nullptr);
  EXPECT_NE(c.get(3), nullptr);
  // MRU-first order after the gets above: 3 was inserted, then 0, 2, 3
  // were touched in that order.
  const auto keys = c.keysByRecency();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], 3);
  EXPECT_EQ(keys[1], 2);
  EXPECT_EQ(keys[2], 0);
}

TEST(LruCache, HeldRowsSurviveEviction) {
  Cache c(1, 1);
  const auto first = c.insertOrGet(1, std::make_shared<const int>(11));
  c.insertOrGet(2, std::make_shared<const int>(22));  // evicts key 1
  EXPECT_EQ(c.get(1), nullptr);
  ASSERT_NE(first, nullptr);  // the held pointer is untouched by eviction
  EXPECT_EQ(*first, 11);
}

TEST(LruCache, FirstInsertWins) {
  Cache c(4);
  const auto a = c.insertOrGet(7, std::make_shared<const int>(70));
  const auto b = c.insertOrGet(7, std::make_shared<const int>(71));
  EXPECT_EQ(*a, 70);
  EXPECT_EQ(*b, 70);  // the racing second insert sees the resident value
  EXPECT_EQ(a.get(), b.get());
}

TEST(LruCache, CapacityZeroDisablesRetention) {
  Cache c(0);
  const auto v = c.insertOrGet(1, std::make_shared<const int>(5));
  ASSERT_NE(v, nullptr);  // the caller still gets its value back
  EXPECT_EQ(*v, 5);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.get(1), nullptr);
}

TEST(LruCache, GetOrComputeCachesAndDeduplicates) {
  Cache c(4);
  std::atomic<int> computes{0};
  auto fn = [&] {
    computes.fetch_add(1);
    return 42;
  };
  EXPECT_EQ(*c.getOrCompute(9, fn), 42);
  EXPECT_EQ(*c.getOrCompute(9, fn), 42);
  EXPECT_EQ(computes.load(), 1);
}

TEST(LruCache, ConcurrentMixedAccessStress) {
  // Small capacity + many keys: constant eviction churn while 8 threads
  // read and insert. TSan-clean and every observed value must equal its
  // key's deterministic function.
  Cache c(16, 4);
  constexpr int kThreads = 8, kOps = 4000, kKeys = 64;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        const int key = (i * 7 + t * 13) % kKeys;
        const auto v = c.getOrCompute(key, [&] { return key * 3; });
        if (!v || *v != key * 3) wrong.fetch_add(1);
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_LE(c.size(), 16u);
  EXPECT_EQ(c.hits() + c.misses(),
            static_cast<std::uint64_t>(kThreads) * kOps);
}

}  // namespace
}  // namespace mpcspan
