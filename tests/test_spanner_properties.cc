// Cross-algorithm property sweep: every spanner algorithm, over several
// graph families, weight models, stretch parameters and seeds, must produce
// (1) a spanning subgraph, (2) per-edge stretch within its certified bound,
// and (3) a size no larger than the input. This is the library's broadest
// parameterized invariant net.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "graph/generators.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/cluster_merging.hpp"
#include "spanner/sqrtk.hpp"
#include "spanner/tradeoff.hpp"
#include "spanner/verify.hpp"

namespace mpcspan {
namespace {

enum class Algo { kBaswanaSen, kClusterMerging, kSqrtK, kTradeoffT2, kTradeoffLogK };

const char* algoName(Algo a) {
  switch (a) {
    case Algo::kBaswanaSen: return "baswana_sen";
    case Algo::kClusterMerging: return "cluster_merging";
    case Algo::kSqrtK: return "sqrtk";
    case Algo::kTradeoffT2: return "tradeoff_t2";
    case Algo::kTradeoffLogK: return "tradeoff_logk";
  }
  return "?";
}

SpannerResult runAlgo(Algo a, const Graph& g, std::uint32_t k, std::uint64_t seed) {
  switch (a) {
    case Algo::kBaswanaSen:
      return buildBaswanaSen(g, {.k = k, .seed = seed});
    case Algo::kClusterMerging:
      return buildClusterMergingSpanner(g, {.k = k, .seed = seed});
    case Algo::kSqrtK:
      return buildSqrtKSpanner(g, {.k = k, .seed = seed});
    case Algo::kTradeoffT2: {
      TradeoffParams p;
      p.k = k;
      p.t = 2;
      p.seed = seed;
      return buildTradeoffSpanner(g, p);
    }
    case Algo::kTradeoffLogK: {
      TradeoffParams p;
      p.k = k;
      p.t = 0;
      p.seed = seed;
      return buildTradeoffSpanner(g, p);
    }
  }
  return {};
}

using Param = std::tuple<Algo, Family, std::uint32_t /*k*/, int /*weights*/,
                         std::uint64_t /*seed*/>;

class SpannerProperty : public ::testing::TestWithParam<Param> {};

TEST_P(SpannerProperty, SpanningStretchAndSize) {
  const auto [algo, family, k, weightKind, seed] = GetParam();
  Rng rng(seed * 7919 + k);
  const WeightSpec weights =
      weightKind == 0 ? WeightSpec{WeightModel::kUnit, 1.0}
                      : WeightSpec{WeightModel::kUniform, 50.0};
  const Graph g = makeFamily(family, 220, 6.0, rng, weights);
  const SpannerResult r = runAlgo(algo, g, k, seed);

  ASSERT_LE(r.edges.size(), g.numEdges());
  const StretchReport report = verifySpanner(
      g, r.edges, r.stretchBound, {.maxEdgeChecks = 800, .pairSources = 3});
  EXPECT_TRUE(report.spanning) << algoName(algo);
  EXPECT_EQ(report.violations, 0u)
      << algoName(algo) << " on " << familyName(family) << " k=" << k
      << ": max stretch " << report.maxEdgeStretch << " > bound "
      << r.stretchBound;
  EXPECT_LE(report.maxPairStretch, r.stretchBound + 1e-6);
}

std::string paramName(const ::testing::TestParamInfo<Param>& info) {
  const auto [algo, family, k, weightKind, seed] = info.param;
  std::string name = std::string(algoName(algo)) + "_" + familyName(family) +
                     "_k" + std::to_string(k) +
                     (weightKind == 0 ? "_unit" : "_wt") + "_s" +
                     std::to_string(seed);
  for (char& c : name)
    if (c == '-') c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpannerProperty,
    ::testing::Combine(
        ::testing::Values(Algo::kBaswanaSen, Algo::kClusterMerging, Algo::kSqrtK,
                          Algo::kTradeoffT2, Algo::kTradeoffLogK),
        ::testing::Values(Family::kGnm, Family::kBarabasiAlbert, Family::kGrid),
        ::testing::Values(2u, 4u, 8u),
        ::testing::Values(0, 1),
        ::testing::Values<std::uint64_t>(1, 2)),
    paramName);

// A second, smaller sweep on the structured extremes (cycle / hypercube /
// complete) with a single seed: these exercise the girth and density corner
// cases of the size analysis.
INSTANTIATE_TEST_SUITE_P(
    Extremes, SpannerProperty,
    ::testing::Combine(
        ::testing::Values(Algo::kBaswanaSen, Algo::kTradeoffT2),
        ::testing::Values(Family::kCycle, Family::kHypercube, Family::kComplete),
        ::testing::Values(3u, 6u),
        ::testing::Values(0, 1),
        ::testing::Values<std::uint64_t>(3)),
    paramName);

}  // namespace
}  // namespace mpcspan
