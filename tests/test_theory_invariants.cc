// Cross-cutting structural invariants from the paper's analysis sections,
// checked on top of the per-algorithm suites:
//  - a spanner contains a spanning forest, so its weight dominates the MST;
//  - Corollary 5.10's closed-form radius;
//  - iteration counts at the trade-off extremes (t=1, t=k) match the two
//    papers they specialize to;
//  - structural extremes (stars, dumbbells, bipartite bottlenecks).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/builder.hpp"
#include "graph/connectivity.hpp"
#include "graph/distance.hpp"
#include "graph/generators.hpp"
#include "graph/union_find.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/sqrtk.hpp"
#include "spanner/tradeoff.hpp"
#include "spanner/verify.hpp"

namespace mpcspan {
namespace {

double mstWeight(const Graph& g) {
  std::vector<EdgeId> ids(g.numEdges());
  std::iota(ids.begin(), ids.end(), 0);
  std::sort(ids.begin(), ids.end(),
            [&](EdgeId a, EdgeId b) { return g.edge(a).w < g.edge(b).w; });
  UnionFind uf(g.numVertices());
  double total = 0;
  for (EdgeId id : ids)
    if (uf.unite(g.edge(id).u, g.edge(id).v)) total += g.edge(id).w;
  return total;
}

TEST(TheoryInvariants, SpannerWeightDominatesMst) {
  Rng rng(1);
  const Graph g = gnmRandom(300, 2400, rng, {WeightModel::kUniform, 30.0}, true);
  const double mst = mstWeight(g);
  for (std::uint32_t t : {1u, 2u}) {
    TradeoffParams p;
    p.k = 8;
    p.t = t;
    p.seed = 2;
    const auto r = buildTradeoffSpanner(g, p);
    const Graph h = subgraph(g, r.edges);
    EXPECT_GE(h.totalWeight() + 1e-9, mst) << "t=" << t;
    EXPECT_TRUE(sameComponents(g, r.edges));
  }
}

TEST(TheoryInvariants, Corollary510RadiusClosedForm) {
  // r^(l) = ((2t+1)^l - 1)/2 with l = ceil(log k / log(t+1)); substituting
  // l = log k/log(t+1) exactly gives (k^s - 1)/2 — our l is the ceiling, so
  // the realized radius is at most (2t+1) times that.
  Rng rng(3);
  const Graph g = gnmRandom(200, 1000, rng, {}, true);
  for (std::uint32_t k : {4u, 16u, 64u}) {
    for (std::uint32_t t : {1u, 2u, 4u}) {
      TradeoffParams p;
      p.k = k;
      p.t = t;
      p.seed = 4;
      const auto r = buildTradeoffSpanner(g, p);
      const double s = std::log(2.0 * t + 1.0) / std::log(t + 1.0);
      const double ks = std::pow(double(k), s);
      EXPECT_LE(r.finalRadius, (2.0 * t + 1.0) * (ks - 1.0) / 2.0 + 1.0)
          << "k=" << k << " t=" << t;
      EXPECT_GE(r.finalRadius, (ks - 1.0) / (2.0 * (2.0 * t + 1.0)) - 1.0);
    }
  }
}

TEST(TheoryInvariants, TradeoffExtremesMatchSpecializations) {
  Rng rng(5);
  const Graph g = gnmRandom(300, 1200, rng, {}, true);
  // t=1 runs ceil(log2 k) iterations (Section 4 / Theorem 4.14).
  for (std::uint32_t k : {8u, 32u}) {
    TradeoffParams p1;
    p1.k = k;
    p1.t = 1;
    p1.seed = 6;
    EXPECT_EQ(buildTradeoffSpanner(g, p1).iterations,
              static_cast<std::size_t>(std::ceil(std::log2(double(k)))));
    // t=k runs one epoch of k iterations at n^{-1/k} ([BS07] regime).
    TradeoffParams pk;
    pk.k = k;
    pk.t = k;
    pk.seed = 6;
    const auto rk = buildTradeoffSpanner(g, pk);
    EXPECT_EQ(rk.epochs, 1u);
    EXPECT_EQ(rk.iterations, static_cast<std::size_t>(k));
  }
}

TEST(TheoryInvariants, SqrtKRadiusRecurrence) {
  // Epoch 1 of t iterations from radius 0: r = t. After contraction the
  // second epoch adds (t-1)(2t+1): r = t + (t-1)(2t+1).
  Rng rng(7);
  const Graph g = gnmRandom(200, 1400, rng, {}, true);
  for (std::uint32_t k : {9u, 25u}) {
    const auto r = buildSqrtKSpanner(g, {.k = k, .seed = 8});
    const double t = std::ceil(std::sqrt(double(k)));
    EXPECT_DOUBLE_EQ(r.finalRadius, t + (t - 1.0) * (2.0 * t + 1.0)) << "k=" << k;
  }
}

TEST(TheoryInvariants, StarGraphSpannerIsWholeStar) {
  // Every star edge is a bridge; nothing can be dropped.
  Rng rng(9);
  const Graph g = starGraph(500, rng, {WeightModel::kUniform, 7.0});
  for (std::uint32_t k : {2u, 8u}) {
    const auto r = buildBaswanaSen(g, {.k = k, .seed = 10});
    EXPECT_EQ(r.edges.size(), g.numEdges()) << "k=" << k;
  }
}

TEST(TheoryInvariants, DumbbellBridgeAlwaysKept) {
  // Two dense cliques joined by one bridge: the bridge must survive any
  // spanner; the cliques must shrink.
  Rng rng(11);
  GraphBuilder b(64);
  for (VertexId u = 0; u < 32; ++u)
    for (VertexId v = u + 1; v < 32; ++v) {
      b.addEdge(u, v, 1.0 + rng.uniform());
      b.addEdge(32 + u, 32 + v, 1.0 + rng.uniform());
    }
  b.addEdge(0, 32, 5.0);
  const Graph g = b.build();
  TradeoffParams p;
  p.k = 3;
  p.t = 1;
  p.seed = 12;
  const auto r = buildTradeoffSpanner(g, p);
  // Find the bridge's id.
  EdgeId bridge = kNoEdge;
  for (EdgeId id = 0; id < g.numEdges(); ++id)
    if (g.edge(id).u == 0 && g.edge(id).v == 32) bridge = id;
  ASSERT_NE(bridge, kNoEdge);
  EXPECT_TRUE(std::binary_search(r.edges.begin(), r.edges.end(), bridge));
  EXPECT_LT(r.edges.size(), g.numEdges());
}

TEST(TheoryInvariants, CompleteBipartiteSparsifies) {
  // K_{32,32}: girth 4, so a 3-spanner can already drop most edges.
  GraphBuilder b(64);
  for (VertexId u = 0; u < 32; ++u)
    for (VertexId v = 32; v < 64; ++v) b.addEdge(u, v, 1.0);
  const Graph g = b.build();
  const auto r = buildBaswanaSen(g, {.k = 2, .seed = 13});
  EXPECT_LT(r.edges.size(), g.numEdges());
  const auto report = verifySpanner(g, r.edges, 3.0);
  EXPECT_TRUE(report.spanning);
  EXPECT_EQ(report.violations, 0u);
}

TEST(TheoryInvariants, HeavyTailWeightsStillCertified) {
  // Exponential weights spanning three orders of magnitude.
  Rng rng(15);
  const Graph g =
      gnmRandom(400, 3200, rng, {WeightModel::kExponential, 5000.0}, true);
  for (std::uint32_t t : {1u, 3u}) {
    TradeoffParams p;
    p.k = 8;
    p.t = t;
    p.seed = 16;
    const auto r = buildTradeoffSpanner(g, p);
    const auto report = verifySpanner(g, r.edges, r.stretchBound,
                                      {.maxEdgeChecks = 1500, .pairSources = 3});
    EXPECT_TRUE(report.spanning);
    EXPECT_EQ(report.violations, 0u) << "t=" << t;
  }
}

TEST(TheoryInvariants, IsolatedVerticesAreHarmless) {
  GraphBuilder b(20);
  b.addEdge(3, 7, 1.0);
  b.addEdge(7, 9, 2.0);
  const Graph g = b.build();
  TradeoffParams p;
  p.k = 4;
  p.t = 2;
  p.seed = 17;
  const auto r = buildTradeoffSpanner(g, p);
  EXPECT_EQ(r.edges.size(), 2u);  // a tree: nothing removable
}

TEST(TheoryInvariants, SizeMonotoneUnderEdgeSampling) {
  // A spanner never exceeds its input: holds under any sub-workload.
  Rng rng(19);
  const Graph g = gnmRandom(300, 3000, rng, {WeightModel::kUniform, 10.0}, true);
  std::vector<Edge> half;
  for (EdgeId id = 0; id < g.numEdges(); id += 2) half.push_back(g.edge(id));
  const Graph g2 = graphFromEdges(g.numVertices(), half);
  TradeoffParams p;
  p.k = 6;
  p.t = 2;
  p.seed = 20;
  EXPECT_LE(buildTradeoffSpanner(g2, p).edges.size(), g2.numEdges());
}

}  // namespace
}  // namespace mpcspan
